"""Render ``regex`` dialect IR back into a pattern string.

Two uses:

* Round-trip debugging (the CLI's ``--emit=pattern``).
* Differential testing: the emitted string is valid Python :mod:`re`
  syntax, so tests can check that high-level transforms preserve the
  match semantics by comparing ``re.search`` results before and after a
  rewrite.

The emitted pattern reflects only the alternation body; the implicit
``.*`` prefix/suffix flags are the caller's to interpret (they map to
``re.search`` vs anchored matching).
"""

from __future__ import annotations

from typing import List

from ...ir.diagnostics import IRError
from ...ir.operation import Operation
from .ops import (
    ConcatenationOp,
    DollarOp,
    GroupOp,
    MatchAnyCharOp,
    MatchCharOp,
    PieceOp,
    RootOp,
    SubRegexOp,
    UNBOUNDED,
)

_META = set("\\^$.|?*+()[]{}")
_CLASS_META = set("\\]^-")


def _escape(code: int, inside_class: bool = False) -> str:
    char = chr(code)
    if code < 0x20 or code > 0x7E:
        return f"\\x{code:02x}"
    if inside_class:
        return "\\" + char if char in _CLASS_META else char
    return "\\" + char if char in _META else char


def _emit_class(op: GroupOp) -> str:
    parts: List[str] = []
    for low, high in op.charset.ranges():
        if high - low >= 2:
            parts.append(f"{_escape(low, True)}-{_escape(high, True)}")
        else:
            parts.extend(_escape(code, True) for code in range(low, high + 1))
    negation = "^" if op.negated else ""
    return f"[{negation}{''.join(parts)}]"


def _emit_quantifier(minimum: int, maximum: int) -> str:
    if (minimum, maximum) == (1, 1):
        return ""
    if (minimum, maximum) == (0, UNBOUNDED):
        return "*"
    if (minimum, maximum) == (1, UNBOUNDED):
        return "+"
    if (minimum, maximum) == (0, 1):
        return "?"
    if maximum == UNBOUNDED:
        return f"{{{minimum},}}"
    if minimum == maximum:
        return f"{{{minimum}}}"
    return f"{{{minimum},{maximum}}}"


def _emit_atom(op: Operation) -> str:
    if isinstance(op, MatchCharOp):
        return _escape(op.code)
    if isinstance(op, MatchAnyCharOp):
        return "."
    if isinstance(op, GroupOp):
        return _emit_class(op)
    if isinstance(op, SubRegexOp):
        return "(" + _emit_alternation(op) + ")"
    if isinstance(op, DollarOp):
        return "$"
    raise IRError(f"not a regex atom: {op.name}")


def _emit_piece(op: PieceOp) -> str:
    minimum, maximum = op.bounds
    atom_text = _emit_atom(op.atom)
    quantifier = _emit_quantifier(minimum, maximum)
    # A quantified multi-char construct needs no extra parens: atoms are
    # single chars, classes, or already-parenthesized sub-regexes.
    return atom_text + quantifier


def emit_piece(op: PieceOp) -> str:
    """Render one quantified piece (e.g. ``(a|ab)*``) as pattern text.

    Public entry point for the Cicero lowering, which stamps the
    rendered fragment onto every instruction it emits for the piece so
    the profiler can attribute execution back to sub-patterns.
    """
    return _emit_piece(op)


def _emit_alternation(op) -> str:
    branches = []
    for concat in op.alternatives:
        branches.append("".join(_emit_piece(piece) for piece in concat.pieces))
    return "|".join(branches)


def emit_pattern(root: RootOp) -> str:
    """Emit the pattern body of a ``regex.root`` as a string."""
    if not isinstance(root, RootOp):
        raise IRError(f"expected regex.root, got {root.name}")
    return _emit_alternation(root)


def emit_python_re(root: RootOp) -> str:
    """Emit a Python :mod:`re` pattern honouring the prefix/suffix flags.

    With both flags set the result is usable with ``re.search``-style
    semantics via ``re.match`` by wrapping in explicit wildcards.
    """
    body = emit_pattern(root)
    prefix = "" if root.has_prefix else "^"
    # A fully unanchored pattern needs no explicit .* when used with
    # re.search; anchoring is expressed with ^/$.
    suffix = "" if root.has_suffix else "$"
    if "|" in body and (prefix or suffix):
        body = f"(?:{body})"
    return prefix + body + suffix
