"""The high-level ``regex`` dialect (paper §3.1–§3.2)."""

from .emit_pattern import emit_pattern, emit_python_re
from .from_ast import pattern_to_regex_dialect, regex_to_module
from .ops import (
    ATOM_OP_NAMES,
    ConcatenationOp,
    DollarOp,
    GroupOp,
    MatchAnyCharOp,
    MatchCharOp,
    PieceOp,
    QuantifierOp,
    REGEX_DIALECT,
    RootOp,
    SubRegexOp,
    UNBOUNDED,
)

__all__ = [
    "ATOM_OP_NAMES",
    "ConcatenationOp",
    "DollarOp",
    "GroupOp",
    "MatchAnyCharOp",
    "MatchCharOp",
    "PieceOp",
    "QuantifierOp",
    "REGEX_DIALECT",
    "RootOp",
    "SubRegexOp",
    "UNBOUNDED",
    "emit_pattern",
    "emit_python_re",
    "pattern_to_regex_dialect",
    "regex_to_module",
]
