"""Pass wrappers for the high-level transforms and their default order.

Each §3.2 transform set is "optional and can be enabled or disabled
individually by toggling different compiler options" — mirrored here by
constructing the pipeline from :class:`~repro.api.CompileOptions` flags
(see :func:`regex_optimization_passes`).
"""

from __future__ import annotations

from typing import List

from ....ir.operation import Operation
from ....ir.pass_manager import Pass, register_pass
from ....ir.rewriter import apply_patterns_greedily
from .boundary_quantifier import boundary_quantifier_patterns
from .factorize_alternations import factorize_patterns
from .simplify_subregex import simplify_subregex_patterns


class SimplifySubRegexPass(Pass):
    """Canonicalize sub-regexes (remove unnecessary parentheses)."""

    PASS_NAME = "regex-simplify-subregex"

    def run(self, root: Operation) -> None:
        apply_patterns_greedily(root, simplify_subregex_patterns())


class FactorizeAlternationsPass(Pass):
    """Factor common prefixes out of alternations."""

    PASS_NAME = "regex-factorize-alternations"

    def run(self, root: Operation) -> None:
        apply_patterns_greedily(root, factorize_patterns())


class BoundaryQuantifierPass(Pass):
    """Shortest-match-aware quantifier reduction at pattern boundaries."""

    PASS_NAME = "regex-boundary-quantifier"

    def run(self, root: Operation) -> None:
        apply_patterns_greedily(root, boundary_quantifier_patterns())


register_pass(SimplifySubRegexPass)
register_pass(FactorizeAlternationsPass)
register_pass(BoundaryQuantifierPass)


def regex_optimization_passes(
    enable_simplify_subregex: bool = True,
    enable_factorize: bool = True,
    enable_boundary_quantifier: bool = True,
) -> List[Pass]:
    """The high-level pipeline in the paper's order.

    Simplification runs first (it exposes common prefixes by removing
    parentheses), factorization second, and the shortest-match reduction
    last (it works on the outermost pieces, which the earlier passes may
    have just created).
    """
    passes: List[Pass] = []
    if enable_simplify_subregex:
        passes.append(SimplifySubRegexPass())
    if enable_factorize:
        passes.append(FactorizeAlternationsPass())
    if enable_boundary_quantifier:
        passes.append(BoundaryQuantifierPass())
    return passes
