"""High-level transformation passes over the ``regex`` dialect (§3.2)."""

from .boundary_quantifier import (
    ReduceBoundaryQuantifiers,
    boundary_quantifier_patterns,
)
from .factorize_alternations import FactorizeCommonPrefix, factorize_patterns
from .pipeline import (
    BoundaryQuantifierPass,
    FactorizeAlternationsPass,
    SimplifySubRegexPass,
    regex_optimization_passes,
)
from .simplify_subregex import (
    HoistQuantifierIntoSubRegex,
    InlineUnquantifiedSubRegex,
    SpliceAlternationSubRegex,
    simplify_subregex_patterns,
)

__all__ = [
    "BoundaryQuantifierPass",
    "FactorizeAlternationsPass",
    "FactorizeCommonPrefix",
    "HoistQuantifierIntoSubRegex",
    "InlineUnquantifiedSubRegex",
    "ReduceBoundaryQuantifiers",
    "SimplifySubRegexPass",
    "SpliceAlternationSubRegex",
    "boundary_quantifier_patterns",
    "factorize_patterns",
    "regex_optimization_passes",
    "simplify_subregex_patterns",
]
