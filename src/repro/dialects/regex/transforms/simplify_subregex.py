"""Sub-regex simplification / canonicalization (paper §3.2, first set).

Removes unnecessary parentheses while respecting operator precedence:

* ``(abc)``  → ``abc``   (unquantified group inlined into the parent)
* ``(a+)``   → ``a+``    (unquantified group around a single piece)
* ``(a)+``   → ``a+``    (quantifier hoisted onto the single inner atom)
* ``(a|b)``  → branches spliced into the parent alternation when the
  group is the only piece of its branch
* ``(a{2,3}){4,7}`` stays unchanged — the paper deliberately keeps nested
  quantifiers unmerged.

All rewrites preserve the recognized language exactly.
"""

from __future__ import annotations

from typing import List

from ....ir.operation import Operation
from ....ir.rewriter import RewritePattern
from ..ops import ConcatenationOp, PieceOp, RootOp, SubRegexOp


def _single_branch(sub_regex: Operation):
    """The group's only concatenation, or None if it has several."""
    branches = sub_regex.alternatives
    if len(branches) == 1:
        return branches[0]
    return None


class InlineUnquantifiedSubRegex(RewritePattern):
    """``x(abc)y`` → ``xabcy``: splice a single-branch, unquantified group.

    Covers both ``(abc)`` → ``abc`` (multi-piece) and ``(a+)`` → ``a+``
    (single piece keeping its own quantifier).
    """

    op_name = PieceOp.OP_NAME
    benefit = 2

    def match_and_rewrite(self, op: Operation) -> bool:
        if op.bounds != (1, 1):
            return False
        atom = op.atom
        if not isinstance(atom, SubRegexOp):
            return False
        branch = _single_branch(atom)
        if branch is None:
            return False
        inner_pieces: List[Operation] = list(branch.pieces)
        for piece in inner_pieces:
            piece.erase()
        op.replace_with(*inner_pieces)
        return True


class HoistQuantifierIntoSubRegex(RewritePattern):
    """``(a)+`` → ``a+``: group of one unquantified piece, outer quantified."""

    op_name = PieceOp.OP_NAME
    benefit = 2

    def match_and_rewrite(self, op: Operation) -> bool:
        if op.bounds == (1, 1):
            return False  # handled by InlineUnquantifiedSubRegex
        atom = op.atom
        if not isinstance(atom, SubRegexOp):
            return False
        branch = _single_branch(atom)
        if branch is None or len(branch.pieces) != 1:
            return False
        inner_piece = branch.pieces[0]
        if inner_piece.bounds != (1, 1):
            return False  # nested quantifiers stay unmerged (paper §3.2)
        inner_atom = inner_piece.atom
        inner_atom.erase()
        atom.replace_with(inner_atom)
        return True


class SpliceAlternationSubRegex(RewritePattern):
    """``(a|b)`` alone in a branch → hoist its branches to the parent.

    Matches on the *parent* alternation container so replacing whole
    branches is a local rewrite.
    """

    op_name = None  # anchors on regex.root and regex.sub_regex
    benefit = 1

    def match_and_rewrite(self, op: Operation) -> bool:
        if not isinstance(op, (RootOp, SubRegexOp)):
            return False
        block = op.regions[0].entry_block
        for branch in list(block.operations):
            pieces = branch.pieces
            if len(pieces) != 1:
                continue
            piece = pieces[0]
            if piece.bounds != (1, 1):
                continue
            atom = piece.atom
            if not isinstance(atom, SubRegexOp):
                continue
            inner_branches = list(atom.alternatives)
            if len(inner_branches) < 2:
                continue  # single-branch case is InlineUnquantifiedSubRegex's
            for inner in inner_branches:
                inner.erase()
            branch.replace_with(*inner_branches)
            return True
        return False


def simplify_subregex_patterns() -> List[RewritePattern]:
    return [
        InlineUnquantifiedSubRegex(),
        HoistQuantifierIntoSubRegex(),
        SpliceAlternationSubRegex(),
    ]
