"""Boundary quantifier reduction (paper §3.2, third set).

For engines that report *any* match (rather than the longest one), a
quantified piece at a pattern boundary adjacent to the implicit ``.*``
can be reduced to its minimum repetition count::

    a{2,3}|b{4,5}  →  a{2}|b{4}
    abcd*|efgh+    →  abc|efgh
    ab+.*          →  ab.*          (paper §3.2)
    ab*$           →  unchanged     (suffix wildcard explicitly disabled)

Soundness: with ``.*`` after the pattern, any input containing
``x{min+k}·rest`` also contains ``x{min}`` followed by characters the
wildcard absorbs, so *whether* a match exists is preserved — only the
matched span changes (hence "shortest-match aware").  Reduction of the
leading piece is symmetric through the ``.*`` prefix.

The rewrite only touches the outermost pieces of the root's branches:
reducing inside a sub-regex or mid-branch would change the language.
This is the only transform of §3.2 that is not fully
semantics-preserving, so it sits behind its own option
(``enable_boundary_quantifier``).
"""

from __future__ import annotations

from typing import List, Optional

from ....ir.operation import Operation
from ....ir.rewriter import RewritePattern
from ..ops import DollarOp, RootOp, UNBOUNDED


def _reduce_piece(piece: Operation) -> Optional[str]:
    """Reduce one boundary piece; returns what changed (or None).

    ``x{min,max}`` with ``max > min`` becomes ``x{min}``; a piece whose
    minimum is zero is removed outright.
    """
    minimum, maximum = piece.bounds
    if isinstance(piece.atom, DollarOp):
        return None  # '$' is a zero-width anchor, not reducible
    if minimum == 0:
        piece.erase()
        return "erased"
    if maximum != minimum:
        piece.set_bounds(minimum, minimum)
        return "reduced"
    return None


def _reduce_boundary(branch: Operation, last: bool) -> bool:
    """Reduce the boundary piece; keep going while pieces get erased."""
    changed = False
    while branch.pieces:
        piece = branch.pieces[-1] if last else branch.pieces[0]
        outcome = _reduce_piece(piece)
        if outcome is None:
            break
        changed = True
        if outcome == "reduced":
            break  # now {min,min}; a second reduction cannot apply
    return changed


class ReduceBoundaryQuantifiers(RewritePattern):
    """Reduce leading/trailing quantified pieces of every root branch."""

    op_name = RootOp.OP_NAME

    def match_and_rewrite(self, op: Operation) -> bool:
        changed = False
        for branch in op.alternatives:
            if op.has_suffix:
                changed |= _reduce_boundary(branch, last=True)
            if op.has_prefix:
                changed |= _reduce_boundary(branch, last=False)
        return changed


def boundary_quantifier_patterns() -> List[RewritePattern]:
    return [ReduceBoundaryQuantifiers()]
