"""Alternation prefix factorization (paper §3.2, second set).

Applies the distributivity of concatenation over alternation to pull
common prefixes out of alternations, for the root and for sub-regexes::

    this|that|those  →  th(is|at|ose)
    a(bc|bd)         →  a(b(c|d))

The rewrite groups branches whose *first piece* is structurally equal
(atom and quantifier), extracts the longest common piece prefix of each
group, and wraps the remainders in a fresh ``regex.sub_regex``.  Since
the Cicero ISA has no capture groups or match priorities, regrouping
branches preserves the recognized language.
"""

from __future__ import annotations

from typing import List, Sequence

from ....ir.operation import Operation
from ....ir.rewriter import RewritePattern
from ..ops import ConcatenationOp, PieceOp, RootOp, SubRegexOp


def _common_prefix_length(branches: Sequence[Operation]) -> int:
    """Longest k such that the first k pieces of all branches are equal."""
    limit = min(len(branch.pieces) for branch in branches)
    length = 0
    while length < limit:
        reference = branches[0].pieces[length]
        if all(
            branch.pieces[length].is_structurally_equal(reference)
            for branch in branches[1:]
        ):
            length += 1
        else:
            break
    return length


def _factor_group(branches: List[Operation], prefix_length: int) -> Operation:
    """Build ``prefix(sub_regex of remainders)`` from equal-prefix branches."""
    factored = ConcatenationOp(location=branches[0].location)
    factored_block = factored.regions[0].entry_block

    # Move the shared prefix from the first branch; drop it from the rest.
    for index in range(prefix_length):
        piece = branches[0].pieces[0]
        piece.erase()
        factored_block.append(piece)
    for branch in branches[1:]:
        for _ in range(prefix_length):
            branch.pieces[0].erase()

    remainder = SubRegexOp(location=branches[0].location)
    remainder_block = remainder.regions[0].entry_block
    for branch in branches:
        remainder_block.append(branch)

    wrapper = PieceOp(location=branches[0].location)
    wrapper.regions[0].entry_block.append(remainder)
    factored_block.append(wrapper)
    return factored


class FactorizeCommonPrefix(RewritePattern):
    """One factoring step on a root/sub-regex alternation.

    Finds the first group of two or more branches sharing an equal first
    piece and factors their longest common prefix.  The greedy driver
    iterates this (and re-offers the new inner sub-regex) to a fixpoint,
    so ``this|that|those`` converges to ``th(is|at|ose)`` and
    ``bc|bd`` inside a group converges to ``b(c|d)``.
    """

    op_name = None  # anchors on regex.root and regex.sub_regex
    benefit = 1

    def match_and_rewrite(self, op: Operation) -> bool:
        if not isinstance(op, (RootOp, SubRegexOp)):
            return False
        block = op.regions[0].entry_block
        branches = list(block.operations)
        if len(branches) < 2:
            return False

        # Group branches by their first piece, preserving first-seen order.
        groups: List[List[Operation]] = []
        for branch in branches:
            if not branch.pieces:
                groups.append([branch])
                continue
            first_piece = branch.pieces[0]
            for group in groups:
                anchor = group[0]
                if (
                    anchor.pieces
                    and anchor.pieces[0].is_structurally_equal(first_piece)
                ):
                    group.append(branch)
                    break
            else:
                groups.append([branch])

        target = next((group for group in groups if len(group) > 1), None)
        if target is None:
            return False

        prefix_length = _common_prefix_length(target)
        assert prefix_length >= 1

        # Splice the factored branch where the group's first member was,
        # keeping the relative order of untouched branches.
        insert_at = block.index_of(target[0])
        for branch in target:
            branch.erase()
        factored = _factor_group(target, prefix_length)
        block.insert(insert_at, factored)
        return True


def factorize_patterns() -> List[RewritePattern]:
    return [FactorizeCommonPrefix()]
