"""AST → ``regex`` dialect conversion (the paper's second compiler stage)."""

from __future__ import annotations

from ...frontend import ast_nodes as ast
from ...ir.operation import ModuleOp
from .ops import (
    ConcatenationOp,
    DollarOp,
    GroupOp,
    MatchAnyCharOp,
    MatchCharOp,
    PieceOp,
    QuantifierOp,
    RootOp,
    SubRegexOp,
)


def _build_atom(atom: ast.Atom):
    if isinstance(atom, ast.Char):
        return MatchCharOp(atom.code, location=atom.location)
    if isinstance(atom, ast.AnyChar):
        return MatchAnyCharOp(location=atom.location)
    if isinstance(atom, ast.CharClass):
        return GroupOp(atom.members, negated=atom.negated, location=atom.location)
    if isinstance(atom, ast.SubRegex):
        op = SubRegexOp(location=atom.location)
        _fill_alternation(op, atom.body)
        return op
    if isinstance(atom, ast.Dollar):
        return DollarOp(location=atom.location)
    raise TypeError(f"unknown atom node: {atom!r}")


def _build_piece(piece: ast.Piece) -> PieceOp:
    op = PieceOp(location=piece.location)
    block = op.regions[0].entry_block
    block.append(_build_atom(piece.atom))
    if piece.is_quantified:
        block.append(QuantifierOp(piece.min, piece.max, location=piece.location))
    return op


def _fill_alternation(container, alternation: ast.Alternation) -> None:
    block = container.regions[0].entry_block
    for branch in alternation.branches:
        concat = ConcatenationOp(location=branch.location)
        concat_block = concat.regions[0].entry_block
        for piece in branch.pieces:
            concat_block.append(_build_piece(piece))
        block.append(concat)


def pattern_to_regex_dialect(pattern: ast.Pattern, verify: bool = False) -> ModuleOp:
    """Convert a parsed pattern into a module holding one ``regex.root``.

    Construction is correct by construction; ``verify=True`` re-checks
    the invariants (used by tests and debug builds, not the hot path).
    """
    module = ModuleOp()
    root = RootOp(
        has_prefix=pattern.has_prefix,
        has_suffix=pattern.has_suffix,
        location=pattern.location,
    )
    _fill_alternation(root, pattern.root)
    module.body.append(root)
    if verify:
        module.verify()
    return module


def regex_to_module(pattern_text: str) -> ModuleOp:
    """Parse + convert in one step (frontend → high-level IR)."""
    from ...frontend.parser import parse_regex

    return pattern_to_regex_dialect(parse_regex(pattern_text))
