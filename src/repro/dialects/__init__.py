"""The paper's two MLIR dialects: high-level ``regex``, low-level ``cicero``."""

from . import cicero, regex

__all__ = ["cicero", "regex"]
