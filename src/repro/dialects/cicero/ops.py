"""The ``cicero`` dialect: low-level IR mapping 1:1 onto the Cicero ISA.

Operation set (paper Table 4):

=================  ==============================  =====================
Cicero ISA         Operation                       Arguments
=================  ==============================  =====================
Accept             ``cicero.accept``
Accept Partial     ``cicero.accept_partial``
Split              ``cicero.split``                ``splitReturn: @sym``
Jump               ``cicero.jump``                 ``target: @sym``
MatchAny           ``cicero.match_any``
Match              ``cicero.match_char``           ``char``
NotMatch           ``cicero.not_match_char``       ``char``
=================  ==============================  =====================

Structure: a ``cicero.program`` op holds one region with a single block
whose operation order *is* the instruction-memory layout (the "mapping of
basic blocks to instruction memory" happens at lowering, §3).  Control
flow targets are symbolic until code generation: any instruction op may
carry a ``sym_name`` label, and ``cicero.split``/``cicero.jump``
reference labels, so transformations may insert and remove instructions
without address fix-ups.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ...ir.attributes import CharAttr, StringAttr, SymbolRefAttr
from ...ir.context import Dialect
from ...ir.diagnostics import VerificationError
from ...ir.operation import Operation

CICERO_DIALECT = Dialect("cicero", "Low-level IR for the Cicero ISA (paper §3.3)")


class CiceroInstructionOp(Operation):
    """Base class of the seven instruction ops; handles labels."""

    def __init__(self, label: Optional[str] = None, **kwargs):
        super().__init__(**kwargs)
        if label is not None:
            self.attributes["sym_name"] = StringAttr(label)

    @property
    def label(self) -> Optional[str]:
        attr = self.attributes.get("sym_name")
        return attr.value if attr is not None else None

    def set_label(self, label: Optional[str]) -> None:
        if label is None:
            self.attributes.pop("sym_name", None)
        else:
            self.attributes["sym_name"] = StringAttr(label)

    @property
    def source(self) -> Optional[str]:
        """The source-regex fragment this instruction was lowered from.

        Provenance for the profiler's attribution reports; carried as an
        open ``source`` attribute so transforms that move or duplicate
        instructions keep it alive without special handling.
        """
        attr = self.attributes.get("source")
        return attr.value if attr is not None else None

    def set_source(self, fragment: Optional[str]) -> None:
        if fragment is None:
            self.attributes.pop("source", None)
        else:
            self.attributes["source"] = StringAttr(fragment)

    def verify_op(self) -> None:
        self.expect_num_regions(0)
        label = self.attributes.get("sym_name")
        if label is not None and not isinstance(label, StringAttr):
            raise VerificationError("'sym_name' must be a string", self)

    @property
    def falls_through(self) -> bool:
        """Does control continue to the next op after this one?

        Acceptance ends the thread; a jump transfers unconditionally.
        Everything else (including split, which also continues at its
        target) falls through.
        """
        return True


@CICERO_DIALECT.register_op
class AcceptOp(CiceroInstructionOp):
    """Accept only if the whole input has been consumed."""

    OP_NAME = "cicero.accept"
    falls_through = False


@CICERO_DIALECT.register_op
class AcceptPartialOp(CiceroInstructionOp):
    """Accept at any point in the input stream."""

    OP_NAME = "cicero.accept_partial"
    falls_through = False


@CICERO_DIALECT.register_op
class SplitOp(CiceroInstructionOp):
    """Fork execution: one thread falls through, one jumps to the target."""

    OP_NAME = "cicero.split"

    def __init__(self, split_return: Optional[str] = None, **kwargs):
        super().__init__(**kwargs)
        if split_return is not None:
            self.attributes["splitReturn"] = SymbolRefAttr(split_return)

    @property
    def target(self) -> str:
        return self.attributes["splitReturn"].name

    def set_target(self, label: str) -> None:
        self.attributes["splitReturn"] = SymbolRefAttr(label)

    def verify_op(self) -> None:
        super().verify_op()
        self.expect_attr("splitReturn", SymbolRefAttr)


@CICERO_DIALECT.register_op
class JumpOp(CiceroInstructionOp):
    """Unconditional jump to the target label."""

    OP_NAME = "cicero.jump"
    falls_through = False

    def __init__(self, target: Optional[str] = None, **kwargs):
        super().__init__(**kwargs)
        if target is not None:
            self.attributes["target"] = SymbolRefAttr(target)

    @property
    def target(self) -> str:
        return self.attributes["target"].name

    def set_target(self, label: str) -> None:
        self.attributes["target"] = SymbolRefAttr(label)

    def verify_op(self) -> None:
        super().verify_op()
        self.expect_attr("target", SymbolRefAttr)


@CICERO_DIALECT.register_op
class MatchAnyOp(CiceroInstructionOp):
    """Consume any one character."""

    OP_NAME = "cicero.match_any"


@CICERO_DIALECT.register_op
class MatchCharOp(CiceroInstructionOp):
    """Consume the current character if it equals the operand."""

    OP_NAME = "cicero.match_char"

    def __init__(self, char=None, **kwargs):
        super().__init__(**kwargs)
        if char is not None:
            self.attributes["char"] = CharAttr(char)

    @property
    def code(self) -> int:
        return self.attributes["char"].value

    def verify_op(self) -> None:
        super().verify_op()
        self.expect_attr("char", CharAttr)


@CICERO_DIALECT.register_op
class NotMatchCharOp(CiceroInstructionOp):
    """Continue (without consuming) if the current character differs."""

    OP_NAME = "cicero.not_match_char"

    def __init__(self, char=None, **kwargs):
        super().__init__(**kwargs)
        if char is not None:
            self.attributes["char"] = CharAttr(char)

    @property
    def code(self) -> int:
        return self.attributes["char"].value

    def verify_op(self) -> None:
        super().verify_op()
        self.expect_attr("char", CharAttr)


TARGET_CARRYING_OPS = (SplitOp, JumpOp)
ACCEPTANCE_OPS = (AcceptOp, AcceptPartialOp)


@CICERO_DIALECT.register_op
class ProgramOp(Operation):
    """Container whose single block is the instruction-memory layout."""

    OP_NAME = "cicero.program"

    def __init__(self, **kwargs):
        super().__init__(num_regions=1, **kwargs)

    @property
    def instructions(self):
        return self.body_ops()

    def label_map(self) -> Dict[str, int]:
        """Label → instruction index (i.e. the address after layout)."""
        labels: Dict[str, int] = {}
        for index, op in enumerate(self.instructions):
            label = op.label
            if label is not None:
                if label in labels:
                    raise VerificationError(f"duplicate label '{label}'", self)
                labels[label] = index
        return labels

    def op_with_label(self, label: str) -> Operation:
        for op in self.instructions:
            if op.label == label:
                return op
        raise VerificationError(f"unknown label '{label}'", self)

    def verify_op(self) -> None:
        self.expect_num_regions(1)
        for op in self.instructions:
            if not isinstance(op, CiceroInstructionOp):
                raise VerificationError(
                    f"'cicero.program' may only contain cicero instructions, "
                    f"found '{op.name}'",
                    self,
                )
        labels = self.label_map()
        for op in self.instructions:
            if isinstance(op, TARGET_CARRYING_OPS) and op.target not in labels:
                raise VerificationError(
                    f"'{op.name}' targets undefined label '{op.target}'", self
                )
