"""The low-level ``cicero`` dialect (paper §3.3) and its transforms."""

from .codegen import generate_program, program_to_dialect
from .lowering import RegexToCiceroLowering, lower_to_cicero
from .ops import (
    ACCEPTANCE_OPS,
    AcceptOp,
    AcceptPartialOp,
    CICERO_DIALECT,
    CiceroInstructionOp,
    JumpOp,
    MatchAnyOp,
    MatchCharOp,
    NotMatchCharOp,
    ProgramOp,
    SplitOp,
    TARGET_CARRYING_OPS,
)
from .transforms import DeadCodeEliminationPass, JumpSimplificationPass

__all__ = [
    "ACCEPTANCE_OPS",
    "AcceptOp",
    "AcceptPartialOp",
    "CICERO_DIALECT",
    "CiceroInstructionOp",
    "DeadCodeEliminationPass",
    "JumpOp",
    "JumpSimplificationPass",
    "MatchAnyOp",
    "MatchCharOp",
    "NotMatchCharOp",
    "ProgramOp",
    "RegexToCiceroLowering",
    "SplitOp",
    "TARGET_CARRYING_OPS",
    "generate_program",
    "lower_to_cicero",
    "program_to_dialect",
]
