"""Lowering from the ``regex`` dialect to the ``cicero`` dialect.

This stage performs the paper's "mapping of basic blocks to instruction
memory and insertion of control instructions" (§3): the nested high-level
IR is flattened into the linear instruction layout of ``cicero.program``,
with symbolic labels standing in for addresses until code generation.

The emitted layout matches the paper's Listing 2 (column "No
optimization") exactly:

* ``.*`` prefix: ``L: split(@body); match_any; jump(@L)``.
* Root alternation: each branch ends with a jump to a single shared
  acceptance op that sits right after the *first* branch; the branches
  are chained by splits placed at each branch's start.
* ``.*`` suffix: the shared acceptance is ``accept_partial``; without it
  (``$``), ``accept``.
* Quantifiers: ``{m,n}`` duplicates the atom ``m`` times then chains
  ``n-m`` optional copies (``split(@after); atom``); ``{m,}`` ends with a
  backward split over the last copy; ``*`` uses the split/jump loop.
* Character classes: positive classes become a split chain over their
  members; negated classes become the ``not_match…; match_any`` sequence
  (§3.3).

Nested sub-regex alternations join forward to a continuation label, with
the last branch falling through.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional

from ...ir.attributes import StringAttr
from ...ir.diagnostics import LoweringError
from ...ir.operation import Block, ModuleOp, Operation
from ..regex.emit_pattern import emit_piece
from ..regex.ops import (
    ConcatenationOp as RegexConcatenationOp,
    DollarOp as RegexDollarOp,
    GroupOp as RegexGroupOp,
    MatchAnyCharOp as RegexMatchAnyCharOp,
    MatchCharOp as RegexMatchCharOp,
    PieceOp as RegexPieceOp,
    RootOp as RegexRootOp,
    SubRegexOp as RegexSubRegexOp,
    UNBOUNDED,
)
from .ops import (
    AcceptOp,
    AcceptPartialOp,
    JumpOp,
    MatchAnyOp,
    MatchCharOp,
    NotMatchCharOp,
    ProgramOp,
    SplitOp,
)


class _Emitter:
    """Appends instruction ops to the program block, managing labels.

    Several constructs may place their label at the same position (e.g.
    a sub-regex join point coinciding with the end of an optional
    chain); the first pending label is attached to the instruction and
    the rest become aliases, resolved over the whole program in
    :meth:`finish`.
    """

    def __init__(self, block: Block):
        self.block = block
        self._label_counter = 0
        self._pending_labels: List[str] = []
        self._aliases: dict = {}
        self._source_stack: List[str] = []

    def fresh_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def place_label(self, label: str) -> None:
        """Attach ``label`` to the next emitted instruction."""
        self._pending_labels.append(label)

    @contextlib.contextmanager
    def source(self, fragment: str) -> Iterator[None]:
        """Stamp instructions emitted inside the block with ``fragment``.

        Contexts nest (a sub-regex branch re-enters :meth:`source` for
        its own pieces); the *outermost* fragment wins, so attribution
        stays at top-level-piece granularity — the unit the profiler's
        "70% of steps burned in ``(a|ab|b)*``" reports speak in.
        """
        self._source_stack.append(fragment)
        try:
            yield
        finally:
            self._source_stack.pop()

    def emit(self, op: Operation) -> Operation:
        if self._pending_labels:
            canonical = self._pending_labels[0]
            op.set_label(canonical)
            for alias in self._pending_labels[1:]:
                self._aliases[alias] = canonical
            self._pending_labels = []
        if self._source_stack and "source" not in op.attributes:
            op.attributes["source"] = StringAttr(self._source_stack[0])
        self.block.append(op)
        return op

    def finish(self) -> None:
        if self._pending_labels:
            raise LoweringError(
                f"labels {self._pending_labels} placed past the program end"
            )
        if self._aliases:
            for op in self.block.operations:
                if isinstance(op, (SplitOp, JumpOp)):
                    canonical = self._aliases.get(op.target)
                    if canonical is not None:
                        op.set_target(canonical)


def _atom_nullable(atom: Operation) -> bool:
    """Can this atom match the empty string?"""
    if isinstance(atom, RegexSubRegexOp):
        return any(
            all(_piece_nullable(piece) for piece in branch.pieces)
            for branch in atom.alternatives
        )
    return isinstance(atom, RegexDollarOp)


def _piece_nullable(piece: RegexPieceOp) -> bool:
    minimum, _maximum = piece.bounds
    return minimum == 0 or _atom_nullable(piece.atom)


class RegexToCiceroLowering:
    """Stateful lowering of one ``regex.root``."""

    def __init__(self):
        self.emitter: Optional[_Emitter] = None

    # ------------------------------------------------------------------
    # Atoms
    # ------------------------------------------------------------------
    def lower_atom(self, atom: Operation) -> None:
        if isinstance(atom, RegexMatchCharOp):
            self.emitter.emit(MatchCharOp(atom.code))
        elif isinstance(atom, RegexMatchAnyCharOp):
            self.emitter.emit(MatchAnyOp())
        elif isinstance(atom, RegexGroupOp):
            self.lower_group(atom)
        elif isinstance(atom, RegexSubRegexOp):
            self.lower_alternation(list(atom.alternatives))
        elif isinstance(atom, RegexDollarOp):
            raise LoweringError(
                "'$' is only supported at the end of a branch "
                "(the Cicero ISA has no mid-pattern end-of-input test)"
            )
        else:
            raise LoweringError(f"cannot lower atom '{atom.name}'")

    def lower_group(self, group: RegexGroupOp) -> None:
        if group.negated:
            # [^ab] -> not_match a; not_match b; match_any   (paper §3.3)
            for code in group.charset.chars():
                self.emitter.emit(NotMatchCharOp(code))
            self.emitter.emit(MatchAnyOp())
            return
        codes = group.charset.chars()
        if len(codes) == 1:
            self.emitter.emit(MatchCharOp(codes[0]))
            return
        # [abc] -> split chain over the members, joining after the class.
        join = self.emitter.fresh_label("G")
        for index, code in enumerate(codes):
            is_last = index == len(codes) - 1
            if not is_last:
                next_member = self.emitter.fresh_label("g")
                self.emitter.emit(SplitOp(next_member))
                self.emitter.emit(MatchCharOp(code))
                self.emitter.emit(JumpOp(join))
                self.emitter.place_label(next_member)
            else:
                self.emitter.emit(MatchCharOp(code))
        self.emitter.place_label(join)

    # ------------------------------------------------------------------
    # Pieces (quantifiers)
    # ------------------------------------------------------------------
    def lower_piece(self, piece: RegexPieceOp) -> None:
        minimum, maximum = piece.bounds
        atom = piece.atom
        if isinstance(atom, RegexDollarOp):
            # Validated tail-position '$' is consumed by lower_branch.
            raise LoweringError("stray '$' inside a branch")
        if maximum == UNBOUNDED and _atom_nullable(atom):
            # The split/jump loop around an empty-matching body is an
            # ε-cycle: Cicero threads would respawn at the same input
            # position forever.  The ISA cannot express this.
            raise LoweringError(
                "unbounded quantifier over a possibly-empty sub-pattern "
                "(e.g. '(a?)*') cannot be lowered to the Cicero ISA"
            )
        if maximum == UNBOUNDED:
            if minimum == 0:
                self._lower_star(atom)
            else:
                for _ in range(minimum - 1):
                    self.lower_atom(atom)
                self._lower_plus(atom)
            return
        for _ in range(minimum):
            self.lower_atom(atom)
        optional_count = maximum - minimum
        if optional_count > 0:
            self._lower_optionals(atom, optional_count)

    def _lower_star(self, atom: Operation) -> None:
        """``x*``: ``L: split(@after); x; jump(@L); after:``."""
        loop = self.emitter.fresh_label("S")
        after = self.emitter.fresh_label("A")
        self.emitter.place_label(loop)
        self.emitter.emit(SplitOp(after))
        self.lower_atom(atom)
        self.emitter.emit(JumpOp(loop))
        self.emitter.place_label(after)

    def _lower_plus(self, atom: Operation) -> None:
        """``x+`` (last copy): ``L: x; split(@L)`` falling through after."""
        loop = self.emitter.fresh_label("P")
        self.emitter.place_label(loop)
        self.lower_atom(atom)
        self.emitter.emit(SplitOp(loop))

    def _lower_optionals(self, atom: Operation, count: int) -> None:
        """``x{0,count}``: a chain of ``split(@after); x`` copies."""
        after = self.emitter.fresh_label("O")
        for _ in range(count):
            self.emitter.emit(SplitOp(after))
            self.lower_atom(atom)
        self.emitter.place_label(after)

    # ------------------------------------------------------------------
    # Branches and alternations
    # ------------------------------------------------------------------
    def lower_branch(self, branch: RegexConcatenationOp) -> bool:
        """Lower one concatenation; returns True if it ended with ``$``."""
        pieces = list(branch.pieces)
        ends_with_dollar = False
        if pieces and isinstance(pieces[-1].atom, RegexDollarOp):
            if pieces[-1].bounds != (1, 1):
                raise LoweringError("'$' cannot be quantified")
            ends_with_dollar = True
            pieces = pieces[:-1]
        for piece in pieces:
            with self.emitter.source(emit_piece(piece)):
                self.lower_piece(piece)
        return ends_with_dollar

    def lower_alternation(self, branches: List[Operation]) -> None:
        """Nested (sub-regex) alternation joining forward to one label."""
        if len(branches) == 1:
            self._lower_nested_branch(branches[0])
            return
        join = self.emitter.fresh_label("J")
        for index, branch in enumerate(branches):
            is_last = index == len(branches) - 1
            if not is_last:
                next_branch = self.emitter.fresh_label("B")
                self.emitter.emit(SplitOp(next_branch))
                self._lower_nested_branch(branch)
                self.emitter.emit(JumpOp(join))
                self.emitter.place_label(next_branch)
            else:
                self._lower_nested_branch(branch)
        self.emitter.place_label(join)

    def _lower_nested_branch(self, branch: RegexConcatenationOp) -> None:
        if self.lower_branch(branch):
            raise LoweringError(
                "'$' is only supported at the end of a top-level branch"
            )

    # ------------------------------------------------------------------
    # Root
    # ------------------------------------------------------------------
    def lower_root(self, root: RegexRootOp) -> ProgramOp:
        program = ProgramOp(location=root.location)
        self.emitter = _Emitter(program.regions[0].entry_block)

        if root.has_prefix:
            # .* prefix: L: split(@body); match_any; jump(@L); body: ...
            loop = self.emitter.fresh_label("PRE")
            body = self.emitter.fresh_label("BODY")
            self.emitter.place_label(loop)
            with self.emitter.source(".* prefix"):
                self.emitter.emit(SplitOp(body))
                self.emitter.emit(MatchAnyOp())
                self.emitter.emit(JumpOp(loop))
            self.emitter.place_label(body)

        accept_label = self.emitter.fresh_label("ACC")
        default_acceptance = (
            AcceptPartialOp if root.has_suffix else AcceptOp
        )

        branches = list(root.alternatives)
        accept_placed = False
        for index, branch in enumerate(branches):
            is_last = index == len(branches) - 1
            next_branch = None
            if not is_last:
                next_branch = self.emitter.fresh_label("B")
                with self.emitter.source("(alternation)"):
                    self.emitter.emit(SplitOp(next_branch))
            ends_with_dollar = self.lower_branch(branch)
            if ends_with_dollar and root.has_suffix:
                # A '$'-terminated branch of an implicit-suffix root needs
                # its own exact-acceptance op, distinct from the shared
                # accept_partial.
                with self.emitter.source("(accept)"):
                    self.emitter.emit(AcceptOp())
            else:
                # Unoptimized Listing-2 layout: every branch ends with a
                # jump to the single shared acceptance, which sits right
                # after the first branch's jump (so that first jump
                # targets the very next address — Jump Simplification's
                # food).
                with self.emitter.source("(accept)"):
                    self.emitter.emit(JumpOp(accept_label))
                    if not accept_placed:
                        self.emitter.place_label(accept_label)
                        self.emitter.emit(default_acceptance())
                        accept_placed = True
            if next_branch is not None:
                self.emitter.place_label(next_branch)

        self.emitter.finish()
        return program


def lower_to_cicero(module: ModuleOp, verify: bool = False) -> ModuleOp:
    """Lower a module holding one ``regex.root`` to ``cicero.program``.

    ``verify=True`` re-checks the emitted program's invariants (tests
    and debug builds; code generation validates targets regardless).
    """
    roots = [op for op in module.body.operations if isinstance(op, RegexRootOp)]
    if len(roots) != 1:
        raise LoweringError(
            f"expected exactly one regex.root in the module, found {len(roots)}"
        )
    program = RegexToCiceroLowering().lower_root(roots[0])
    lowered = ModuleOp(location=module.location)
    lowered.body.append(program)
    if verify:
        lowered.verify()
    return lowered
