"""The paper's *Jump Simplification* optimization (§5).

Applied to each ``cicero.jump``:

1. a jump to the immediately following operation is removed;
2. a jump to an acceptance operation is replaced by a copy of that
   acceptance (the paper "avoids jumping to AcceptPartialOp operations by
   duplicating them", relaxing the single-acceptance-state condition);
3. a jump whose target is another jump is retargeted to the final
   destination of the chain (unconditional jump threading).

Rule 3 runs first (it can turn a far jump into a next-op or to-accept
jump), then 2, then 1, iterating to a fixpoint.  A final dead-code
sweep (see :mod:`.dce`) removes instructions no longer reachable, e.g.
the shared acceptance once every jump to it was duplicated away.

All rules strictly reduce the instruction count or the total jump
offset, improving the code-locality metric ``D_offset`` — never the
reverse (tested property).
"""

from __future__ import annotations

from typing import Dict, Optional

from ....ir.diagnostics import LoweringError
from ....ir.operation import Operation
from ....ir.pass_manager import Pass, register_pass
from ..ops import ACCEPTANCE_OPS, JumpOp, ProgramOp, SplitOp, TARGET_CARRYING_OPS


def _retarget_references(program: ProgramOp, old_label: str, new_label: str) -> None:
    for op in program.instructions:
        if isinstance(op, TARGET_CARRYING_OPS) and op.target == old_label:
            op.set_target(new_label)


def _ensure_label(op: Operation, emit_hint: str, counter: list) -> str:
    """Return the op's label, creating a fresh one when absent."""
    if op.label is None:
        counter[0] += 1
        op.set_label(f"{emit_hint}{counter[0]}")
    return op.label


def _thread_jump_chains(program: ProgramOp, counter: list) -> bool:
    """Rule 3: retarget jump→jump chains to their final destination.

    Applied to jumps only — the paper's rules act "on each JumpOp"; a
    split that targets a jump keeps doing so (the jump usually becomes
    dead once every jump into it is threaded, and falls to DCE).
    """
    changed = False
    label_to_op = {
        op.label: op for op in program.instructions if op.label is not None
    }
    for op in program.instructions:
        if not isinstance(op, JumpOp):
            continue
        destination = label_to_op[op.target]
        hops = 0
        while isinstance(destination, JumpOp):
            destination = label_to_op[destination.target]
            hops += 1
            if hops > len(program.instructions):
                raise LoweringError("jump cycle detected during threading")
        if hops > 0:
            final_label = _ensure_label(destination, "T", counter)
            op.set_target(final_label)
            changed = True
    return changed


def _duplicate_acceptance_targets(program: ProgramOp) -> bool:
    """Rule 2: replace jump-to-acceptance with a copy of the acceptance."""
    changed = False
    label_to_op = {
        op.label: op for op in program.instructions if op.label is not None
    }
    for op in list(program.instructions):
        if not isinstance(op, JumpOp):
            continue
        destination = label_to_op.get(op.target)
        if destination is None or not isinstance(destination, ACCEPTANCE_OPS):
            continue
        duplicate = type(destination)()
        duplicate.set_label(op.label)  # keep incoming references valid
        # Keep provenance: the duplicate stands where the jump stood, so
        # the jump's source fragment (falling back to the acceptance's)
        # is what the profiler should attribute it to.
        source = op.attributes.get("source")
        if source is None:
            source = destination.attributes.get("source")
        if source is not None:
            duplicate.attributes["source"] = source
        op.replace_with(duplicate)
        changed = True
    return changed


def _remove_jumps_to_next(program: ProgramOp) -> bool:
    """Rule 1: drop jumps that target the very next instruction."""
    changed = False
    instructions = program.instructions
    labels: Dict[str, int] = program.label_map()
    index = 0
    while index < len(instructions) - 1:
        op = instructions[index]
        if isinstance(op, JumpOp) and labels.get(op.target) == index + 1:
            successor = instructions[index + 1]
            own_label: Optional[str] = op.label
            op.erase()
            if own_label is not None:
                # References to the removed jump now mean its successor.
                if successor.label is not None:
                    _retarget_references(program, own_label, successor.label)
                else:
                    successor.set_label(own_label)
            changed = True
            labels = program.label_map()
            continue  # re-check the same index (list shifted)
        index += 1
    return changed


class JumpSimplificationPass(Pass):
    """Iterate the three jump rules to a fixpoint."""

    PASS_NAME = "cicero-jump-simplification"

    def run(self, root: Operation) -> None:
        counter = [0]
        for program in _programs_under(root):
            for _ in range(len(program.instructions) + 1):
                changed = _thread_jump_chains(program, counter)
                changed |= _duplicate_acceptance_targets(program)
                changed |= _remove_jumps_to_next(program)
                if not changed:
                    break


def _programs_under(root: Operation):
    if isinstance(root, ProgramOp):
        return [root]
    return [op for op in root.walk() if isinstance(op, ProgramOp)]


register_pass(JumpSimplificationPass)
