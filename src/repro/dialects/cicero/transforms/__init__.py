"""Architecture-oriented transforms over the ``cicero`` dialect (§5)."""

from .dce import DeadCodeEliminationPass
from .jump_simplification import JumpSimplificationPass

__all__ = ["DeadCodeEliminationPass", "JumpSimplificationPass"]
