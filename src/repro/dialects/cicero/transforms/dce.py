"""Dead-code elimination for ``cicero.program``.

Reachability starts at the first instruction (the engine's reset PC) and
follows:

* fall-through for every op except jumps and acceptances (a jump
  transfers unconditionally; acceptance terminates the thread);
* the symbolic target of every reachable split and jump.

Unreachable instructions are erased.  This cleans up after Jump
Simplification: once every jump to the shared acceptance has been
duplicated into a local acceptance, the shared op (reached only by
fall-through from a jump that no longer exists) goes away — giving the
paper's 10-instruction result for ``ab|cd`` (Listing 2, right column).
"""

from __future__ import annotations

from typing import Set

from ....ir.operation import Operation
from ....ir.pass_manager import Pass, register_pass
from ..ops import ProgramOp, TARGET_CARRYING_OPS


def _reachable_indices(program: ProgramOp) -> Set[int]:
    instructions = program.instructions
    if not instructions:
        return set()
    labels = program.label_map()
    reachable: Set[int] = set()
    worklist = [0]
    while worklist:
        index = worklist.pop()
        if index in reachable or index >= len(instructions):
            continue
        reachable.add(index)
        op = instructions[index]
        if op.falls_through:
            worklist.append(index + 1)
        if isinstance(op, TARGET_CARRYING_OPS):
            worklist.append(labels[op.target])
    return reachable


class DeadCodeEliminationPass(Pass):
    """Remove instructions unreachable from the program entry."""

    PASS_NAME = "cicero-dce"

    def run(self, root: Operation) -> None:
        programs = (
            [root]
            if isinstance(root, ProgramOp)
            else [op for op in root.walk() if isinstance(op, ProgramOp)]
        )
        for program in programs:
            reachable = _reachable_indices(program)
            for index, op in reversed(list(enumerate(program.instructions))):
                if index not in reachable:
                    op.erase()


register_pass(DeadCodeEliminationPass)
