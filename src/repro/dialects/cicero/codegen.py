"""Code generation: ``cicero.program`` → :class:`~repro.isa.Program`.

Thanks to the dialect's one-to-one mapping onto the ISA (§3.3) this is a
single linear walk: operation order gives addresses, labels resolve to
operand values, done.
"""

from __future__ import annotations

from typing import List, Optional

from ...ir.diagnostics import CodegenError
from ...isa.instructions import Instruction, Opcode
from ...isa.program import Program
from .ops import (
    AcceptOp,
    AcceptPartialOp,
    JumpOp,
    MatchAnyOp,
    MatchCharOp,
    NotMatchCharOp,
    ProgramOp,
    SplitOp,
)


def generate_program(
    program_op: ProgramOp, source_pattern: str = "", compiler: str = ""
) -> Program:
    """Emit the binary-level program for a ``cicero.program`` op."""
    labels = program_op.label_map()
    instructions: List[Instruction] = []
    source_map: List[Optional[str]] = []
    for address, op in enumerate(program_op.instructions):
        source_map.append(getattr(op, "source", None))
        if isinstance(op, AcceptOp):
            instructions.append(Instruction(Opcode.ACCEPT))
        elif isinstance(op, AcceptPartialOp):
            instructions.append(Instruction(Opcode.ACCEPT_PARTIAL))
        elif isinstance(op, SplitOp):
            instructions.append(Instruction(Opcode.SPLIT, labels[op.target]))
        elif isinstance(op, JumpOp):
            instructions.append(Instruction(Opcode.JMP, labels[op.target]))
        elif isinstance(op, MatchAnyOp):
            instructions.append(Instruction(Opcode.MATCH_ANY))
        elif isinstance(op, MatchCharOp):
            instructions.append(Instruction(Opcode.MATCH, op.code))
        elif isinstance(op, NotMatchCharOp):
            instructions.append(Instruction(Opcode.NOT_MATCH, op.code))
        else:
            raise CodegenError(f"cannot encode op '{op.name}' at {address}")
    return Program(
        instructions,
        source_pattern=source_pattern,
        compiler=compiler,
        # Attribution is optional: a program lowered without source
        # contexts (e.g. lifted back from binary) carries no map at all.
        source_map=(
            source_map if any(entry is not None for entry in source_map) else None
        ),
    )


def program_to_dialect(program: Program) -> ProgramOp:
    """Inverse direction: lift a binary program back into the dialect.

    Used by round-trip tests and by tools that want to re-optimize an
    existing binary.  Only jump/split targets receive labels.
    """
    program_op = ProgramOp()
    block = program_op.regions[0].entry_block
    ops = []
    for instruction in program:
        if instruction.opcode is Opcode.ACCEPT:
            ops.append(AcceptOp())
        elif instruction.opcode is Opcode.ACCEPT_PARTIAL:
            ops.append(AcceptPartialOp())
        elif instruction.opcode is Opcode.SPLIT:
            ops.append(SplitOp(f"A{instruction.operand}"))
        elif instruction.opcode is Opcode.JMP:
            ops.append(JumpOp(f"A{instruction.operand}"))
        elif instruction.opcode is Opcode.MATCH_ANY:
            ops.append(MatchAnyOp())
        elif instruction.opcode is Opcode.MATCH:
            ops.append(MatchCharOp(instruction.operand))
        elif instruction.opcode is Opcode.NOT_MATCH:
            ops.append(NotMatchCharOp(instruction.operand))
        else:  # pragma: no cover - Opcode is closed
            raise CodegenError(f"unknown opcode {instruction.opcode}")
    targets = {
        instruction.operand
        for instruction in program
        if instruction.opcode.is_control_flow
    }
    for address, op in enumerate(ops):
        if address in targets:
            op.set_label(f"A{address}")
        block.append(op)
    program_op.verify()
    return program_op
