"""Regular-expression lexer.

Splits a pattern string into structural tokens, resolving escapes and the
bracket-expression sub-language so the parser only deals with a flat token
stream (the role ANTLR4 lexer rules play in the paper's frontend).

Token kinds:

``LITERAL``    a single byte to match (``value`` = byte code)
``CLASS``      a character class (``value`` = (members tuple, negated))
``DOT``        the ``.`` wildcard
``STAR PLUS QMARK``  the one-character quantifiers
``QUANT``      a ``{m}``/``{m,}``/``{m,n}`` quantifier (``value`` = (m, n))
``PIPE LPAREN RPAREN CARET DOLLAR``  structure and anchors
``END``        end of pattern
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .errors import RegexSyntaxError, UnsupportedRegexError

UNBOUNDED = -1

_SIMPLE_ESCAPES = {
    "n": 0x0A,
    "r": 0x0D,
    "t": 0x09,
    "f": 0x0C,
    "v": 0x0B,
    "a": 0x07,
    "0": 0x00,
}

_DIGITS = tuple(range(ord("0"), ord("9") + 1))
_WORD = tuple(
    sorted(
        set(range(ord("a"), ord("z") + 1))
        | set(range(ord("A"), ord("Z") + 1))
        | set(_DIGITS)
        | {ord("_")}
    )
)
_SPACE = tuple(sorted({0x20, 0x09, 0x0A, 0x0D, 0x0C, 0x0B}))

#: ``\d``-style shorthand classes: name -> (members, negated)
PERL_CLASSES = {
    "d": (_DIGITS, False),
    "D": (_DIGITS, True),
    "w": (_WORD, False),
    "W": (_WORD, True),
    "s": (_SPACE, False),
    "S": (_SPACE, True),
}

#: Metacharacters that escape to themselves.
_SELF_ESCAPES = set("\\^$.|?*+()[]{}-/'\"` ")


@dataclass(frozen=True)
class Token:
    kind: str
    position: int
    value: object = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.value is None:
            return f"{self.kind}@{self.position}"
        return f"{self.kind}({self.value!r})@{self.position}"


class Lexer:
    """One-pass scanner over the pattern string."""

    def __init__(self, pattern: str):
        self.pattern = pattern
        self.position = 0

    # ------------------------------------------------------------------
    # Character-level helpers
    # ------------------------------------------------------------------
    def _error(self, message: str, column: Optional[int] = None) -> RegexSyntaxError:
        where = self.position if column is None else column
        return RegexSyntaxError(message, self.pattern, where)

    def _unsupported(self, message: str, column: Optional[int] = None):
        where = self.position if column is None else column
        return UnsupportedRegexError(message, self.pattern, where)

    def _peek(self) -> Optional[str]:
        if self.position < len(self.pattern):
            return self.pattern[self.position]
        return None

    def _take(self) -> str:
        char = self.pattern[self.position]
        self.position += 1
        return char

    def _read_escape(self) -> Tuple[str, object]:
        """Consume the body of an escape (after the backslash).

        Returns ``("char", code)`` or ``("class", (members, negated))``.
        """
        start = self.position - 1
        if self.position >= len(self.pattern):
            raise self._error("dangling backslash at end of pattern", start)
        char = self._take()
        if char in _SIMPLE_ESCAPES:
            return "char", _SIMPLE_ESCAPES[char]
        if char == "x":
            hex_digits = self.pattern[self.position : self.position + 2]
            if len(hex_digits) != 2 or any(
                digit not in "0123456789abcdefABCDEF" for digit in hex_digits
            ):
                raise self._error("\\x escape needs two hex digits", start)
            self.position += 2
            return "char", int(hex_digits, 16)
        if char in PERL_CLASSES:
            return "class", PERL_CLASSES[char]
        if char in _SELF_ESCAPES:
            return "char", ord(char)
        if char.isdigit():
            raise self._unsupported(
                f"back-references (\\{char}) are not supported", start
            )
        if char in "bB":
            raise self._unsupported(
                "word-boundary anchors (\\b) are not supported", start
            )
        raise self._error(f"unknown escape \\{char}", start)

    # ------------------------------------------------------------------
    # Bracket expressions
    # ------------------------------------------------------------------
    def _lex_class(self, start: int) -> Token:
        """Parse ``[...]``; the opening bracket is already consumed."""
        negated = False
        if self._peek() == "^":
            self._take()
            negated = True
        members = set()
        first = True
        while True:
            if self._peek() is None:
                raise self._error("unterminated character class", start)
            char = self._take()
            if char == "]" and not first:
                break
            first = False
            if char == "[" and self._peek() == ":":
                raise self._unsupported(
                    "POSIX classes ([:alpha:]) are not supported", self.position - 1
                )
            if char == "\\":
                kind, value = self._read_escape()
                if kind == "class":
                    class_members, class_negated = value
                    if class_negated:
                        members.update(set(range(256)) - set(class_members))
                    else:
                        members.update(class_members)
                    continue
                low = value
            else:
                low = ord(char)
            # Possible range low-high.
            if self._peek() == "-" and self.pattern[self.position + 1 : self.position + 2] not in ("]", ""):
                self._take()  # '-'
                range_start = self.position
                high_char = self._take()
                if high_char == "\\":
                    kind, value = self._read_escape()
                    if kind == "class":
                        raise self._error(
                            "character class shorthand cannot end a range",
                            range_start,
                        )
                    high = value
                else:
                    high = ord(high_char)
                if high < low:
                    raise self._error(
                        f"reversed range {chr(low)}-{chr(high)} in class", range_start
                    )
                members.update(range(low, high + 1))
            else:
                members.add(low)
        if not members:
            raise self._error("empty character class", start)
        return Token("CLASS", start, (tuple(sorted(members)), negated))

    # ------------------------------------------------------------------
    # Bounded quantifiers
    # ------------------------------------------------------------------
    def _lex_quantifier(self, start: int) -> Token:
        """Parse ``{m}``, ``{m,}``, ``{m,n}``; ``{`` already consumed."""
        body_start = self.position
        while self._peek() not in ("}", None):
            self._take()
        if self._peek() is None:
            raise self._error("unterminated {m,n} quantifier", start)
        body = self.pattern[body_start : self.position]
        self._take()  # '}'
        parts = body.split(",")
        try:
            if len(parts) == 1:
                minimum = maximum = int(parts[0])
            elif len(parts) == 2:
                minimum = int(parts[0])
                maximum = UNBOUNDED if parts[1] == "" else int(parts[1])
            else:
                raise ValueError
        except ValueError:
            raise self._error(f"malformed quantifier {{{body}}}", start) from None
        if minimum < 0 or (maximum != UNBOUNDED and maximum < minimum):
            raise self._error(f"invalid quantifier bounds {{{body}}}", start)
        return Token("QUANT", start, (minimum, maximum))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while self.position < len(self.pattern):
            start = self.position
            char = self._take()
            if char == ".":
                tokens.append(Token("DOT", start))
            elif char == "*":
                tokens.append(Token("STAR", start))
            elif char == "+":
                tokens.append(Token("PLUS", start))
            elif char == "?":
                tokens.append(Token("QMARK", start))
            elif char == "|":
                tokens.append(Token("PIPE", start))
            elif char == "(":
                if self._peek() == "?":
                    raise self._unsupported(
                        "(?...) group extensions are not supported", start
                    )
                tokens.append(Token("LPAREN", start))
            elif char == ")":
                tokens.append(Token("RPAREN", start))
            elif char == "^":
                tokens.append(Token("CARET", start))
            elif char == "$":
                tokens.append(Token("DOLLAR", start))
            elif char == "[":
                tokens.append(self._lex_class(start))
            elif char == "{":
                tokens.append(self._lex_quantifier(start))
            elif char == "}":
                raise self._error("unbalanced '}'", start)
            elif char == "]":
                tokens.append(Token("LITERAL", start, ord("]")))
            elif char == "\\":
                kind, value = self._read_escape()
                if kind == "class":
                    tokens.append(Token("CLASS", start, value))
                else:
                    tokens.append(Token("LITERAL", start, value))
            else:
                code = ord(char)
                if code > 255:
                    raise self._error(
                        f"non-byte character {char!r} (only 8-bit input supported)",
                        start,
                    )
                tokens.append(Token("LITERAL", start, code))
        tokens.append(Token("END", len(self.pattern)))
        return tokens


def tokenize(pattern: str) -> List[Token]:
    """Tokenize ``pattern``; raises :class:`RegexSyntaxError` on bad input."""
    return Lexer(pattern).tokenize()
