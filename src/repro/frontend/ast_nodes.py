"""Abstract syntax tree for the supported regular-expression subset.

The shape mirrors the paper's Regex dialect (§3.1): a pattern is an
alternation of concatenations of *pieces*; each piece is an *atom* with an
optional quantifier.  Atoms are single characters, the ``.`` wildcard,
character classes, parenthesized sub-regexes, and the ``$`` end anchor.

``min``/``max`` on :class:`Piece` use the dialect's convention: ``max ==
-1`` means unbounded (``+``, ``*``, ``{m,}``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..ir.diagnostics import Location, UNKNOWN_LOCATION

UNBOUNDED = -1


@dataclass
class Node:
    """Base class for all AST nodes."""

    location: Location = field(default=UNKNOWN_LOCATION, kw_only=True)


@dataclass
class Atom(Node):
    """Base class for atoms (the quantifiable units)."""


@dataclass
class Char(Atom):
    """A single literal byte."""

    code: int

    def __post_init__(self):
        if not 0 <= self.code <= 255:
            raise ValueError(f"character code out of byte range: {self.code}")


@dataclass
class AnyChar(Atom):
    """The ``.`` wildcard."""


@dataclass
class CharClass(Atom):
    """A character class ``[...]``.

    ``members`` is the set of byte codes *written in the class* (before
    negation); ``negated`` is true for ``[^...]``.  Keeping negation
    explicit (rather than complementing the set) lets the lowering emit
    the paper's ``NotMatch…;MatchAny`` sequence for negated classes.
    """

    members: Tuple[int, ...]
    negated: bool = False

    def matches(self, code: int) -> bool:
        inside = code in self.members
        return not inside if self.negated else inside


@dataclass
class SubRegex(Atom):
    """A parenthesized group containing a full sub-pattern."""

    body: "Alternation"


@dataclass
class Dollar(Atom):
    """The ``$`` anchor appearing in the middle of a pattern."""


@dataclass
class Piece(Node):
    """An atom with its quantifier; ``(1, 1)`` means unquantified."""

    atom: Atom
    min: int = 1
    max: int = 1

    def __post_init__(self):
        if self.min < 0:
            raise ValueError(f"quantifier minimum must be >= 0, got {self.min}")
        if self.max != UNBOUNDED and self.max < self.min:
            raise ValueError(
                f"quantifier maximum {self.max} below minimum {self.min}"
            )

    @property
    def is_quantified(self) -> bool:
        return (self.min, self.max) != (1, 1)


@dataclass
class Concatenation(Node):
    """A sequence of pieces matched one after another."""

    pieces: List[Piece] = field(default_factory=list)


@dataclass
class Alternation(Node):
    """``|``-separated branches; a single branch is the degenerate case."""

    branches: List[Concatenation] = field(default_factory=list)


@dataclass
class Pattern(Node):
    """A complete pattern with its implicit ``.*`` prefix/suffix flags.

    ``has_prefix``/``has_suffix`` default to true (match-anywhere
    semantics, paper §3.1) and are disabled by a leading ``^`` or a
    trailing ``$`` respectively.
    """

    root: Alternation = field(default_factory=Alternation)
    has_prefix: bool = True
    has_suffix: bool = True
    text: str = ""


def dump(node: Node, indent: int = 0) -> str:
    """Human-readable AST dump used by tests and the CLI."""
    pad = "  " * indent
    if isinstance(node, Pattern):
        header = (
            f"{pad}Pattern(has_prefix={node.has_prefix}, "
            f"has_suffix={node.has_suffix})"
        )
        return header + "\n" + dump(node.root, indent + 1)
    if isinstance(node, Alternation):
        lines = [f"{pad}Alternation"]
        lines.extend(dump(branch, indent + 1) for branch in node.branches)
        return "\n".join(lines)
    if isinstance(node, Concatenation):
        lines = [f"{pad}Concatenation"]
        lines.extend(dump(piece, indent + 1) for piece in node.pieces)
        return "\n".join(lines)
    if isinstance(node, Piece):
        if node.is_quantified:
            suffix = f" {{{node.min},{'∞' if node.max == UNBOUNDED else node.max}}}"
        else:
            suffix = ""
        return f"{pad}Piece{suffix}\n" + dump(node.atom, indent + 1)
    if isinstance(node, Char):
        shown = chr(node.code) if 0x20 < node.code < 0x7F else f"0x{node.code:02X}"
        return f"{pad}Char({shown})"
    if isinstance(node, AnyChar):
        return f"{pad}AnyChar"
    if isinstance(node, CharClass):
        mark = "^" if node.negated else ""
        members = "".join(
            chr(code) if 0x20 < code < 0x7F else f"\\x{code:02X}"
            for code in node.members
        )
        return f"{pad}CharClass([{mark}{members}])"
    if isinstance(node, SubRegex):
        return f"{pad}SubRegex\n" + dump(node.body, indent + 1)
    if isinstance(node, Dollar):
        return f"{pad}Dollar"
    raise TypeError(f"not an AST node: {node!r}")
