"""Regular-expression parser: token stream → AST.

Implements the paper's supported operator subset (§3.1): alternation,
concatenation, quantifiers (``* + ? {m} {m,} {m,n}``), literals, ``.``,
character classes, groups, and the ``^``/``$`` anchors.

Anchor semantics follow the paper's ``RootOp`` model, where the implicit
``.*`` prefix/suffix flags are *pattern-global*:

* ``^`` as the very first character sets ``has_prefix = False``; a caret
  anywhere else is rejected (not in the supported subset).
* ``$`` as the very last character sets ``has_suffix = False`` when the
  pattern has a single top-level branch; in multi-branch patterns the
  trailing ``$`` stays a :class:`~repro.frontend.ast_nodes.Dollar` atom of
  its branch (so the other branches keep their implicit suffix).  A ``$``
  in the middle of a pattern is always a ``Dollar`` atom.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.diagnostics import Location
from .ast_nodes import (
    Alternation,
    AnyChar,
    Char,
    CharClass,
    Concatenation,
    Dollar,
    Pattern,
    Piece,
    SubRegex,
)
from .errors import (
    DEFAULT_MAX_NESTING_DEPTH,
    PatternNestingError,
    RegexSyntaxError,
    UnsupportedRegexError,
)
from .lexer import Token, tokenize

_QUANTIFIER_KINDS = ("STAR", "PLUS", "QMARK", "QUANT")
_UNBOUNDED = -1


class RegexParser:
    """Recursive-descent parser over the lexer's token stream.

    Recursion happens only through groups, so an explicit ``max_depth``
    check on ``(`` bounds the interpreter stack: deeply nested patterns
    raise a typed :class:`PatternNestingError` instead of blowing the
    Python recursion limit.  ``max_depth=None`` disables the guard.
    """

    def __init__(
        self,
        pattern: str,
        max_depth: Optional[int] = DEFAULT_MAX_NESTING_DEPTH,
    ):
        self.pattern = pattern
        self.tokens: List[Token] = tokenize(pattern)
        self.index = 0
        self.max_depth = max_depth
        self._depth = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def _error(self, message: str, token: Token) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.pattern, token.position)

    def _location(self, token: Token) -> Location:
        return Location(column=token.position)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse(self) -> Pattern:
        has_prefix = True
        if self._peek().kind == "CARET":
            self._advance()
            has_prefix = False

        root = self._parse_alternation()

        trailing = self._peek()
        if trailing.kind != "END":
            if trailing.kind == "RPAREN":
                raise self._error("unbalanced ')'", trailing)
            raise self._error(
                f"unexpected {trailing.kind} at top level", trailing
            )

        has_suffix = True
        if len(root.branches) == 1:
            has_suffix = not self._strip_trailing_dollar(root.branches[0])
        return Pattern(
            root=root,
            has_prefix=has_prefix,
            has_suffix=has_suffix,
            text=self.pattern,
        )

    @staticmethod
    def _strip_trailing_dollar(branch: Concatenation) -> bool:
        """Remove a final unquantified ``$`` piece; True if one was there."""
        if branch.pieces:
            last = branch.pieces[-1]
            if isinstance(last.atom, Dollar) and not last.is_quantified:
                branch.pieces.pop()
                return True
        return False

    # ------------------------------------------------------------------
    # Grammar productions
    # ------------------------------------------------------------------
    def _parse_alternation(self) -> Alternation:
        start = self._peek()
        branches = [self._parse_concatenation()]
        while self._peek().kind == "PIPE":
            self._advance()
            branches.append(self._parse_concatenation())
        return Alternation(branches=branches, location=self._location(start))

    def _parse_concatenation(self) -> Concatenation:
        start = self._peek()
        pieces: List[Piece] = []
        while self._peek().kind not in ("PIPE", "RPAREN", "END"):
            pieces.append(self._parse_piece())
        return Concatenation(pieces=pieces, location=self._location(start))

    def _parse_piece(self) -> Piece:
        token = self._peek()
        if token.kind in _QUANTIFIER_KINDS:
            raise self._error("quantifier with nothing to repeat", token)
        atom = self._parse_atom()
        minimum, maximum = 1, 1
        quantifier = self._peek()
        if quantifier.kind in _QUANTIFIER_KINDS:
            self._advance()
            if quantifier.kind == "STAR":
                minimum, maximum = 0, _UNBOUNDED
            elif quantifier.kind == "PLUS":
                minimum, maximum = 1, _UNBOUNDED
            elif quantifier.kind == "QMARK":
                minimum, maximum = 0, 1
            else:
                minimum, maximum = quantifier.value
            follower = self._peek()
            if follower.kind in _QUANTIFIER_KINDS:
                raise self._error(
                    "multiple quantifiers on one atom are not supported",
                    follower,
                )
            if isinstance(atom, Dollar):
                raise self._error("'$' cannot be quantified", quantifier)
        return Piece(
            atom=atom, min=minimum, max=maximum, location=self._location(token)
        )

    def _parse_atom(self):
        token = self._advance()
        location = self._location(token)
        if token.kind == "LITERAL":
            return Char(code=token.value, location=location)
        if token.kind == "DOT":
            return AnyChar(location=location)
        if token.kind == "CLASS":
            members, negated = token.value
            return CharClass(members=members, negated=negated, location=location)
        if token.kind == "DOLLAR":
            return Dollar(location=location)
        if token.kind == "CARET":
            raise UnsupportedRegexError(
                "'^' is only supported at the start of the pattern",
                self.pattern,
                token.position,
            )
        if token.kind == "LPAREN":
            self._depth += 1
            if self.max_depth is not None and self._depth > self.max_depth:
                raise PatternNestingError(
                    self.pattern, token.position, self.max_depth
                )
            body = self._parse_alternation()
            self._depth -= 1
            closer = self._advance()
            if closer.kind != "RPAREN":
                raise self._error("unbalanced '('", token)
            return SubRegex(body=body, location=location)
        if token.kind == "RPAREN":
            raise self._error("unbalanced ')'", token)
        raise self._error(f"unexpected {token.kind}", token)


def parse_regex(
    pattern: str, max_depth: Optional[int] = DEFAULT_MAX_NESTING_DEPTH
) -> Pattern:
    """Parse ``pattern`` into a :class:`~repro.frontend.ast_nodes.Pattern`.

    Raises :class:`~repro.frontend.errors.RegexSyntaxError` for malformed
    input, :class:`~repro.frontend.errors.UnsupportedRegexError` for
    constructs outside the supported subset, and
    :class:`~repro.frontend.errors.PatternNestingError` when group
    nesting exceeds ``max_depth`` (``None`` disables the guard).
    """
    return RegexParser(pattern, max_depth=max_depth).parse()
