"""Regex frontend: lexer, parser, and AST (the ANTLR4 stage of the paper)."""

from .ast_nodes import (
    Alternation,
    AnyChar,
    Atom,
    Char,
    CharClass,
    Concatenation,
    Dollar,
    Node,
    Pattern,
    Piece,
    SubRegex,
    UNBOUNDED,
    dump,
)
from .errors import (
    DEFAULT_MAX_NESTING_DEPTH,
    PatternNestingError,
    RegexSyntaxError,
    UnsupportedRegexError,
)
from .lexer import Lexer, PERL_CLASSES, Token, tokenize
from .parser import RegexParser, parse_regex

__all__ = [
    "Alternation",
    "AnyChar",
    "Atom",
    "Char",
    "CharClass",
    "Concatenation",
    "DEFAULT_MAX_NESTING_DEPTH",
    "Dollar",
    "Lexer",
    "Node",
    "PERL_CLASSES",
    "Pattern",
    "PatternNestingError",
    "Piece",
    "RegexParser",
    "RegexSyntaxError",
    "SubRegex",
    "Token",
    "UNBOUNDED",
    "UnsupportedRegexError",
    "dump",
    "parse_regex",
    "tokenize",
]
