"""Frontend-specific error types.

All inherit from :class:`~repro.ir.diagnostics.ParseError`, so callers can
catch a single exception type for "the pattern was rejected" regardless of
whether lexing or parsing failed.
"""

from __future__ import annotations

from ..ir.diagnostics import Location, ParseError


class RegexSyntaxError(ParseError):
    """The pattern is not well-formed (unbalanced parens, bad escape...)."""

    def __init__(self, message: str, pattern: str, column: int):
        self.pattern = pattern
        self.column = column
        pointer = ""
        if 0 <= column <= len(pattern):
            pointer = f"\n  {pattern}\n  {' ' * column}^"
        super().__init__(message + pointer, Location(column=column))


class UnsupportedRegexError(RegexSyntaxError):
    """The construct is valid regex but outside the supported subset.

    The paper's compiler performs "syntax and grammar checking, ensuring
    that input REs ... employ only supported operations" (§3); constructs
    like back-references or look-around land here.
    """
