"""Frontend-specific error types.

All inherit from :class:`~repro.ir.diagnostics.ParseError`, so callers can
catch a single exception type for "the pattern was rejected" regardless of
whether lexing or parsing failed.
"""

from __future__ import annotations

from ..ir.diagnostics import BudgetExceeded, Location, ParseError

#: Default cap on group-nesting depth.  Both recursive-descent frontends
#: check it explicitly, so a pathological ``((((...`` pattern is rejected
#: with a typed error long before Python's interpreter recursion limit
#: (~1000 frames, several frames per nesting level) could fire.
DEFAULT_MAX_NESTING_DEPTH = 100


class RegexSyntaxError(ParseError):
    """The pattern is not well-formed (unbalanced parens, bad escape...)."""

    code = "REPRO-SYNTAX"

    def __init__(self, message: str, pattern: str, column: int):
        self.pattern = pattern
        self.column = column
        pointer = ""
        if 0 <= column <= len(pattern):
            pointer = f"\n  {pattern}\n  {' ' * column}^"
        super().__init__(message + pointer, Location(column=column))


class UnsupportedRegexError(RegexSyntaxError):
    """The construct is valid regex but outside the supported subset.

    The paper's compiler performs "syntax and grammar checking, ensuring
    that input REs ... employ only supported operations" (§3); constructs
    like back-references or look-around land here.
    """

    code = "REPRO-UNSUPPORTED"


class PatternNestingError(BudgetExceeded, RegexSyntaxError):
    """Group nesting deeper than the configured budget.

    Deliberately both a :class:`~repro.ir.diagnostics.BudgetExceeded`
    (it is a resource guard) and a :class:`RegexSyntaxError` (existing
    callers that catch "the pattern was rejected" keep working).
    """

    code = "REPRO-BUDGET-NESTING"

    def __init__(self, pattern: str, column: int, limit: int):
        RegexSyntaxError.__init__(
            self,
            f"group nesting exceeds the {limit}-level budget",
            pattern,
            column,
        )
        self.limit = limit
        self.spent = limit + 1
