"""Compile-time literal / first-byte analysis over the ``regex`` dialect.

The engine's VM fast path still walks *every* input byte through the
ε-closure interpreter; on sparse-match corpus scans almost all of that
work touches bytes a compile-time analysis can prove irrelevant.  This
module is that analysis: a pass over the (optimized) ``regex``-dialect
module that extracts

* **required literals** — for each top-level alternation branch, a byte
  string that occurs in *every* input the branch matches.  A chunk that
  contains none of the branch literals cannot match, so the scanner can
  reject it with ``bytes.find`` (memchr speed in CPython) without ever
  entering the VM.
* **a required prefix** — the forced leading bytes of the match body.
  For start-anchored patterns (``^…``) the chunk-level test degenerates
  to a single ``startswith``.
* **first-byte sets** — every byte a match can start with.  When no
  branch yields a literal but the set is small, a character-class scan
  still rejects chunks containing none of those bytes.

The verdict is *advisory by construction*: an analysis may say "maybe"
for a chunk that does not match (the VM settles it), but it must never
say "no" for a chunk that does — the soundness property the Hypothesis
suite checks against the golden-model VM.  When nothing useful can be
extracted (a leading ``.*``, an alternation branch with no forced
bytes, a branch that matches the empty string) the analysis returns an
explicit **inert** verdict with a reason, and every scanner layer falls
through to full verification.

The result is a plain frozen dataclass so it pickles with the
:class:`~repro.isa.program.Program` it is attached to — cached entries
and sharded worker processes see exactly the metadata the compiling
process extracted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..dialects.regex.ops import (
    ConcatenationOp,
    DollarOp,
    GroupOp,
    MatchAnyCharOp,
    MatchCharOp,
    RootOp,
    SubRegexOp,
)

#: First-byte sets larger than this filter too weakly to pay for the
#: extra pass over the chunk; the analysis reports them as absent.
MAX_FIRST_BYTES = 16

#: All 256 byte values — a first-byte set this wide filters nothing.
_ALL_BYTES = frozenset(range(256))


@dataclass(frozen=True)
class PrefilterAnalysis:
    """What the compile-time pass could prove about a pattern's matches.

    ``literals`` holds one required literal per top-level branch (the
    longest forced run in that branch) — ``None`` when at least one
    branch has no forced run, in which case literal prefiltering is
    unsound.  ``first_bytes`` is the sorted tuple of possible first
    bytes (``None`` when unknown or wider than
    :data:`MAX_FIRST_BYTES`).  ``prefix`` is the forced leading byte
    string shared by every branch (possibly empty); it anchors a
    ``startswith`` test only when ``anchored_start`` is set.
    """

    #: One required literal per top-level branch; ``None`` = unusable.
    literals: Optional[Tuple[bytes, ...]] = None
    #: Bytes every match must start with (meaningful with anchoring).
    prefix: bytes = b""
    #: Possible first bytes of a match, ascending; ``None`` = unknown.
    first_bytes: Optional[Tuple[int, ...]] = None
    #: ``True`` when the pattern has no implicit ``.*`` prefix (``^``).
    anchored_start: bool = False
    #: Why nothing usable was extracted (empty when something was).
    inert_reason: str = ""

    @property
    def inert(self) -> bool:
        """No stage of the prefilter pipeline can use this analysis."""
        return (
            self.literals is None
            and self.first_bytes is None
            and not (self.anchored_start and self.prefix)
        )

    @property
    def min_literal_len(self) -> int:
        if not self.literals:
            return 0
        return min(len(literal) for literal in self.literals)

    def to_dict(self) -> dict:
        """A stable, JSON-friendly fingerprint (tests compare these
        across pickling and process boundaries)."""
        return {
            "literals": (
                None
                if self.literals is None
                else [literal.decode("latin-1") for literal in self.literals]
            ),
            "prefix": self.prefix.decode("latin-1"),
            "first_bytes": (
                None if self.first_bytes is None else list(self.first_bytes)
            ),
            "anchored_start": self.anchored_start,
            "inert": self.inert,
            "inert_reason": self.inert_reason,
        }


#: The analysis attached when extraction is impossible or disabled.
INERT_ANALYSIS = PrefilterAnalysis(inert_reason="no analysis performed")


@dataclass
class _BranchFacts:
    """What one alternation branch forces on its matches."""

    #: Maximal forced byte runs, in branch order.
    runs: List[bytes] = field(default_factory=list)
    #: Forced bytes at the very start of the branch.
    prefix: bytes = b""
    #: Possible first bytes (``None`` = any byte / unknown).
    first_bytes: Optional[frozenset] = frozenset()
    #: Does the branch match the empty string?
    can_be_empty: bool = True

    @property
    def best_literal(self) -> bytes:
        """The longest forced run (ties broken towards the front)."""
        best = b""
        for run in self.runs:
            if len(run) > len(best):
                best = run
        return best


def _atom_charset(atom) -> Optional[frozenset]:
    """The possible byte values one consuming atom accepts.

    ``None`` means "any byte" (cheaper than materializing 256 members
    and recognized by the first-byte unioning as "give up").
    """
    if isinstance(atom, MatchCharOp):
        return frozenset((atom.code,))
    if isinstance(atom, GroupOp):
        members = frozenset(atom.charset.chars())
        if atom.negated:
            members = _ALL_BYTES - members
        return members
    if isinstance(atom, MatchAnyCharOp):
        return None
    raise TypeError(f"not a charset atom: {atom.name}")


class _BranchAnalyzer:
    """Single forward walk over one branch's pieces.

    Forced-run bookkeeping: an atom with exactly one possible byte and
    ``min >= 1`` appends ``byte * min`` to the current run; anything
    optional, multi-byte, or with ``max > min`` *closes* the run —
    ``a{2,4}c`` forces ``aa`` but not ``aac``, because the optional
    repeats sit between the forced copies and the ``c``.
    """

    def __init__(self) -> None:
        self.facts = _BranchFacts()
        self._run = bytearray()
        self._prefix_active = True
        self._first_done = False

    # -- forced-run bookkeeping ---------------------------------------
    def _flush_run(self) -> None:
        if self._run:
            self.facts.runs.append(bytes(self._run))
            if self._prefix_active:
                self.facts.prefix = bytes(self._run)
            self._run.clear()
        self._prefix_active = False

    def _append_forced(self, byte: int, count: int, exact: bool) -> None:
        self._run.extend(bytes((byte,)) * count)
        if not exact:
            # Optional extra repeats break adjacency with what follows;
            # the forced copies themselves still end the prefix.
            self._flush_run()

    # -- first-byte bookkeeping ---------------------------------------
    def _union_first(self, charset: Optional[frozenset]) -> None:
        if self._first_done:
            return
        if charset is None or self.facts.first_bytes is None:
            self.facts.first_bytes = None
        else:
            self.facts.first_bytes = self.facts.first_bytes | charset

    # -- piece walk ----------------------------------------------------
    def add_piece(self, piece) -> None:
        atom = piece.atom
        minimum, maximum = piece.bounds
        if isinstance(atom, DollarOp):
            # Consumes nothing; forces nothing beyond "the branch ends
            # here", which the run bookkeeping already captures.
            self._flush_run()
            return
        if isinstance(atom, SubRegexOp):
            self._add_sub_regex(atom, minimum, maximum)
            return
        charset = _atom_charset(atom)
        self._union_first(charset)
        if minimum >= 1:
            self.facts.can_be_empty = False
            self._first_done = True
            if charset is not None and len(charset) == 1:
                self._append_forced(
                    next(iter(charset)), minimum, exact=maximum == minimum
                )
            else:
                self._flush_run()
        else:
            self._flush_run()

    def _add_sub_regex(self, atom: SubRegexOp, minimum: int, maximum: int) -> None:
        sub_facts = [_analyze_branch(branch) for branch in atom.alternatives]
        sub_can_be_empty = any(facts.can_be_empty for facts in sub_facts)
        first_union: Optional[frozenset] = frozenset()
        for facts in sub_facts:
            if facts.first_bytes is None or first_union is None:
                first_union = None
            else:
                first_union = first_union | facts.first_bytes
        self._union_first(first_union)
        consumed = minimum >= 1 and not sub_can_be_empty
        if consumed:
            self.facts.can_be_empty = False
            self._first_done = True
        # The group's internal alignment with the surrounding pieces is
        # unknown, so the current run always closes here.
        self._flush_run()
        if minimum >= 1 and len(sub_facts) == 1:
            # A required single-branch group contributes its own runs as
            # standalone required literals (adjacency with the outside
            # is already severed by the flush above).
            self.facts.runs.extend(sub_facts[0].runs)

    def finish(self) -> _BranchFacts:
        self._flush_run()
        facts = self.facts
        if facts.first_bytes is not None and (
            not facts.first_bytes or len(facts.first_bytes) > MAX_FIRST_BYTES
        ):
            # Empty = the branch consumes nothing (matches-empty is
            # reported separately); oversized = filters too weakly.
            facts.first_bytes = None
        return facts


def _analyze_branch(branch: ConcatenationOp) -> _BranchFacts:
    analyzer = _BranchAnalyzer()
    for piece in branch.pieces:
        analyzer.add_piece(piece)
    return analyzer.finish()


def analyze_module(module) -> PrefilterAnalysis:
    """Extract prefilter facts from a module holding one ``regex.root``.

    Runs over the *optimized* module (the same IR every back-end lowers
    from), so factorized alternations and simplified sub-regexes yield
    the longest extractable literals.  Never raises on analyzable input
    shapes it does not understand — unknown structure degrades to the
    inert verdict, keeping the analysis purely advisory.
    """
    roots = [op for op in module.body.operations if isinstance(op, RootOp)]
    if len(roots) != 1:
        return PrefilterAnalysis(inert_reason="module has no single regex.root")
    root = roots[0]
    anchored_start = not root.has_prefix
    try:
        branch_facts = [_analyze_branch(branch) for branch in root.alternatives]
    except (TypeError, AttributeError):  # unknown atom shape: stay advisory
        return PrefilterAnalysis(
            anchored_start=anchored_start,
            inert_reason="unrecognized pattern structure",
        )

    if any(facts.can_be_empty for facts in branch_facts):
        return PrefilterAnalysis(
            anchored_start=anchored_start,
            inert_reason="a branch matches the empty string",
        )

    literals: Optional[List[bytes]] = []
    for facts in branch_facts:
        literal = facts.best_literal
        if not literal:
            literals = None
            break
        literals.append(literal)

    first_bytes: Optional[frozenset] = frozenset()
    for facts in branch_facts:
        if facts.first_bytes is None or first_bytes is None:
            first_bytes = None
            break
        first_bytes = first_bytes | facts.first_bytes
    if first_bytes is not None and len(first_bytes) > MAX_FIRST_BYTES:
        first_bytes = None

    prefixes = [facts.prefix for facts in branch_facts]
    prefix = prefixes[0] if prefixes else b""
    for other in prefixes[1:]:
        limit = min(len(prefix), len(other))
        index = 0
        while index < limit and prefix[index] == other[index]:
            index += 1
        prefix = prefix[:index]
        if not prefix:
            break

    inert_reason = ""
    if literals is None and first_bytes is None and not (
        anchored_start and prefix
    ):
        inert_reason = "no usable literal or first-byte set"
    return PrefilterAnalysis(
        literals=None if literals is None else tuple(literals),
        prefix=prefix,
        first_bytes=None if first_bytes is None else tuple(sorted(first_bytes)),
        anchored_start=anchored_start,
        inert_reason=inert_reason,
    )


def analyze_pattern(pattern: str, optimize: bool = True) -> PrefilterAnalysis:
    """Parse + optimize + analyze in one call (tests and tooling)."""
    from ..dialects.regex.from_ast import pattern_to_regex_dialect
    from ..dialects.regex.transforms.pipeline import regex_optimization_passes
    from ..frontend.parser import parse_regex
    from ..ir.pass_manager import PassManager

    module = pattern_to_regex_dialect(parse_regex(pattern))
    if optimize:
        pipeline = PassManager(verify_each=False)
        for transform in regex_optimization_passes():
            pipeline.add(transform)
        pipeline.run(module)
    return analyze_module(module)


__all__ = [
    "INERT_ANALYSIS",
    "MAX_FIRST_BYTES",
    "PrefilterAnalysis",
    "analyze_module",
    "analyze_pattern",
]
