"""Budget-bounded lazy DFA over the Thompson program.

The VM fast path pays a Python-level set expansion per input position;
for scan-heavy workloads that is the dominant cost even when the
frontier is tiny.  This module determinizes the same work-instruction
model *on the fly*: a DFA state is the frozenset of work PCs the VM
would hold in its frontier, and a transition row is filled in one byte
class at a time, only for the (state, class) pairs the input actually
exercises.  Once a transition is cached, re-traversing it costs two
list indexings — roughly two orders of magnitude less than a VM
position.

Byte classes: every distinct ``MATCH``/``NOT_MATCH`` operand gets a
singleton class and all remaining bytes share one residual class.  Two
bytes in the same class are indistinguishable to the program (the only
byte inspections are equality tests against those operands), so one
cached transition covers the whole class; the input is mapped through
the 256-byte class table with :meth:`bytes.translate` — one C-level
pass — before the automaton loop runs.

Subtlety the state graph must carry: ``NOT_MATCH`` is an ε-move
*conditioned on the current byte*, and it can reach ``ACCEPT_PARTIAL``
within a position.  Acceptance mid-input is therefore a property of the
*transition* (state × byte class), not of the state alone, so cached
transitions encode "match fires at this position" as a distinct
sentinel rather than a successor state.

The construction is strictly bounded: interning a state beyond
``max_states`` raises :class:`LazyDFABlowup`, and
:class:`LazyDFAMatcher` then falls back — permanently, for that
pattern — to the NFA VM.  Blowup is a performance event, never a
correctness event (acceptance criterion: pathological ``(a|aa){n}``
patterns degrade with a ``repro_lazydfa_fallback_total`` increment,
never an error or a wrong verdict).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..isa.instructions import Opcode
from ..isa.program import Program
from ..vm.thompson import MatchResult, ThompsonVM, _as_bytes

#: Default cap on interned DFA states (also the `Budget.max_dfa_states`
#: default).  64 states/row × a few hundred rows is a few MB at most;
#: real-world literal-ish patterns determinize in well under 100 states.
DEFAULT_MAX_DFA_STATES = 10_000

# Transition-row sentinels (all < 0 so real state ids stay >= 0).
_UNBUILT = -3
_MATCHED = -2
_DEAD = -1


class LazyDFABlowup(Exception):
    """The subset construction exceeded ``max_states``.

    A plain exception (not a :class:`ReproError`): it never escapes to
    users — :class:`LazyDFAMatcher` catches it and falls back to the
    VM, and the fuzz oracle counts it as an abstain.
    """

    def __init__(self, max_states: int, pattern: Optional[str] = None):
        self.max_states = max_states
        self.pattern = pattern
        super().__init__(
            f"lazy DFA exceeded max_dfa_states={max_states}"
            + (f" for pattern {pattern!r}" if pattern else "")
        )


class LazyDFA:
    """On-the-fly determinization of one Thompson program.

    Shares (or builds) a :class:`ThompsonVM` for its precomputed
    ε-closure dispatch tables; the cached transition graph grows only as
    inputs demand and is reused across :meth:`run` calls, so scan loops
    amortize construction across the whole corpus.
    """

    def __init__(
        self,
        program: Program,
        max_states: Optional[int] = DEFAULT_MAX_DFA_STATES,
        vm: Optional[ThompsonVM] = None,
    ):
        self.program = program
        #: ``None`` disables the cap (Budget.unlimited() semantics).
        self.max_states = max_states
        self._vm = vm if vm is not None else ThompsonVM(program)
        self._opcodes = self._vm._opcodes
        self._operands = self._vm._operands
        self._successors = self._vm._successors
        self._build_byte_classes()
        accept = int(Opcode.ACCEPT)
        accept_partial = int(Opcode.ACCEPT_PARTIAL)
        self._accept_opcodes = (accept, accept_partial)
        # State interning: id 0 is always the entry state.
        self._ids: Dict[frozenset, int] = {}
        self._states: List[frozenset] = []
        self._rows: List[List[int]] = []
        self._accept_end: List[bool] = []
        self._intern(frozenset(self._vm._entry))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_byte_classes(self) -> None:
        match_op = int(Opcode.MATCH)
        not_match = int(Opcode.NOT_MATCH)
        operand_bytes = sorted(
            {
                self._operands[pc]
                for pc, opcode in enumerate(self._opcodes)
                if opcode in (match_op, not_match)
            }
        )
        class_of = [len(operand_bytes)] * 256  # residual class by default
        for index, byte in enumerate(operand_bytes):
            class_of[byte] = index
        # One representative byte per class drives transition building;
        # the residual class (if any byte falls in it) uses the smallest
        # non-operand byte.
        representatives = list(operand_bytes)
        operand_set = set(operand_bytes)
        residual = next(
            (byte for byte in range(256) if byte not in operand_set), None
        )
        if residual is not None:
            representatives.append(residual)
        self.num_classes = len(representatives)
        self._representatives = representatives
        self._class_table = bytes(class_of)

    def _intern(self, state: frozenset) -> int:
        state_id = self._ids.get(state)
        if state_id is not None:
            return state_id
        if self.max_states is not None and len(self._states) >= self.max_states:
            raise LazyDFABlowup(self.max_states, self.program.source_pattern)
        state_id = len(self._states)
        self._ids[state] = state_id
        self._states.append(state)
        self._rows.append([_UNBUILT] * self.num_classes)
        opcodes = self._opcodes
        accepts = self._accept_opcodes
        self._accept_end.append(any(opcodes[pc] in accepts for pc in state))
        return state_id

    def _build_transition(self, state_id: int, byte_class: int) -> int:
        """One VM position, specialized to ``byte_class``'s bytes."""
        char = self._representatives[byte_class]
        opcodes = self._opcodes
        operands = self._operands
        successors = self._successors
        accept_partial = int(Opcode.ACCEPT_PARTIAL)
        match_any = int(Opcode.MATCH_ANY)
        not_match = int(Opcode.NOT_MATCH)
        match_op = int(Opcode.MATCH)

        visited = set()
        next_roots = []
        worklist = list(self._states[state_id])
        result = _DEAD
        while worklist:
            pc = worklist.pop()
            if pc in visited:
                continue
            visited.add(pc)
            opcode = opcodes[pc]
            if opcode == not_match:
                if char != operands[pc]:
                    worklist.extend(successors[pc])
            elif opcode == match_any:
                next_roots.append(pc)
            elif opcode == accept_partial:
                result = _MATCHED
                break
            elif opcode == match_op:
                if char == operands[pc]:
                    next_roots.append(pc)
            # ACCEPT needs end-of-input; with a byte in hand it is dead.
        if result != _MATCHED:
            next_state = frozenset(
                pc
                for root in next_roots
                for pc in successors[root]
            )
            if next_state:
                result = self._intern(next_state)
        self._rows[state_id][byte_class] = result
        return result

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def state_count(self) -> int:
        return len(self._states)

    def run(
        self, text: Union[str, bytes], max_steps: Optional[int] = None
    ) -> MatchResult:
        """Execute over ``text``; verdicts equal :meth:`ThompsonVM.run`.

        ``max_steps`` is accepted for interface parity with the VM and
        ignored — the DFA does bounded work per byte by construction
        (its own bound is ``max_states``, enforced during building).
        Raises :class:`LazyDFABlowup` when the input drives the cache
        past that bound; callers fall back to the VM.
        """
        data = text if isinstance(text, bytes) else _as_bytes(text)
        translated = data.translate(self._class_table)
        rows = self._rows
        state_id = 0
        row = rows[0]
        build = self._build_transition
        for position, byte_class in enumerate(translated):
            next_id = row[byte_class]
            if next_id < 0:
                if next_id == _UNBUILT:
                    next_id = build(state_id, byte_class)
                if next_id == _MATCHED:
                    return MatchResult(True, position)
                if next_id == _DEAD:
                    return MatchResult(False, None)
            state_id = next_id
            row = rows[state_id]
        if self._accept_end[state_id]:
            return MatchResult(True, len(data))
        return MatchResult(False, None)


class LazyDFAMatcher:
    """Lazy DFA with a permanent, metered fallback to the NFA VM.

    The first :class:`LazyDFABlowup` flips the matcher into VM mode for
    good — a pattern that blows the state budget once will do so again,
    and half-built caches are not worth re-probing per call.  The
    fallback is observable (``repro_lazydfa_fallback_total``) but never
    behavioral: both paths return identical :class:`MatchResult`s.
    """

    def __init__(
        self,
        program: Program,
        max_states: Optional[int] = DEFAULT_MAX_DFA_STATES,
        max_vm_steps: Optional[int] = None,
        metrics=None,
        vm: Optional[ThompsonVM] = None,
    ):
        self.vm = vm if vm is not None else ThompsonVM(program)
        self.dfa = LazyDFA(program, max_states=max_states, vm=self.vm)
        self.max_vm_steps = max_vm_steps
        self.blown = False
        self._metrics = metrics if metrics is not None and metrics.enabled else None
        self._runs = None
        self._fallbacks = None
        self._states_gauge = None
        if metrics is not None and metrics.enabled:
            self._runs = metrics.counter(
                "repro_lazydfa_runs_total",
                help_text="lazy-DFA executions (fallback runs excluded)",
            )
            self._fallbacks = metrics.counter(
                "repro_lazydfa_fallback_total",
                help_text="lazy-DFA state-budget blowups degraded to the NFA VM",
            )
            self._states_gauge = metrics.gauge(
                "repro_lazydfa_states",
                help_text="DFA states interned for the current pattern",
            )

    def match(self, text: Union[str, bytes]) -> MatchResult:
        if not self.blown:
            try:
                result = self.dfa.run(text)
            except LazyDFABlowup:
                self.blown = True
                if self._fallbacks is not None:
                    self._fallbacks.inc()
            else:
                if self._runs is not None:
                    self._runs.inc()
                    self._states_gauge.set(self.dfa.state_count)
                return result
        return self.vm.run(text, self.max_vm_steps, metrics=self._metrics)


__all__ = [
    "DEFAULT_MAX_DFA_STATES",
    "LazyDFA",
    "LazyDFABlowup",
    "LazyDFAMatcher",
]
