"""Aho-Corasick candidate pruning for the multimatch engine.

An IDS-style rule set compiles into one identifier-tagged program whose
VM enumerates *all* rules against every event.  Most events can match
only a handful of rules — the ones whose required literal actually
occurs in the event — so this wrapper runs the shared
:class:`~repro.prefilter.ahocorasick.AhoCorasick` automaton first (one
pass, per-rule attribution even for overlapping literals) and hands the
VM the resulting candidate set:

* no candidates → the VM is skipped outright (the common sparse case);
* some candidates → the VM runs normally but stops as soon as every
  candidate has been seen instead of waiting for *all* rule ids.

Rules whose analysis yielded no usable literal (inert) are permanent
candidates, so pruning is exactly as aggressive as the compile-time
analysis can justify and no more.  Verdicts are identical to the bare
:class:`~repro.multimatch.vm.MultiMatchVM` (property-tested and fuzzed
via the ``multi`` oracles).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple, Union

from ..multimatch.compiler import MultiProgram
from ..multimatch.vm import MultiMatchResult, MultiMatchVM
from ..runtime.encoding import as_input_bytes
from .ahocorasick import AhoCorasick


class PrefilteredMultiMatchVM:
    """Drop-in for :class:`MultiMatchVM` with literal candidate pruning.

    ``mode`` mirrors the single-pattern scanner: ``off`` delegates every
    run straight to the VM; ``literal``/``auto`` both enable the
    Aho-Corasick stage (there is no lazy-DFA step here — the tagged
    program must enumerate every candidate's acceptance, which is
    exactly what the VM does).
    """

    def __init__(
        self,
        multi_program: MultiProgram,
        mode: str = "auto",
        metrics=None,
    ):
        self.multi_program = multi_program
        self.vm = MultiMatchVM(multi_program)
        analyses = getattr(multi_program, "analyses", None) or {}
        entries: List[Tuple[bytes, int]] = []
        always: List[int] = []
        for match_id in multi_program.patterns:
            analysis = analyses.get(match_id)
            if mode == "off" or analysis is None or not analysis.literals:
                always.append(match_id)
            else:
                for literal in set(analysis.literals):
                    entries.append((literal, match_id))
        self.always_candidates: FrozenSet[int] = frozenset(always)
        self._automaton = AhoCorasick(entries) if entries else None
        self._checks = None
        self._skips = None
        self._candidates = None
        if metrics is not None and metrics.enabled and self._automaton is not None:
            self._checks = metrics.counter(
                "repro_prefilter_checks_total",
                help_text="chunks examined by the literal/first-byte prefilter",
            )
            self._skips = metrics.counter(
                "repro_prefilter_skips_total",
                help_text="chunks rejected without entering the verify step",
            )
            self._candidates = metrics.counter(
                "repro_prefilter_candidates_total",
                help_text="chunks the prefilter passed through to verification",
            )

    @property
    def filtered_ids(self) -> FrozenSet[int]:
        """Rule ids the automaton can actually rule out."""
        return frozenset(self.multi_program.patterns) - self.always_candidates

    def run(
        self, text: Union[str, bytes], max_steps: Optional[int] = None
    ) -> MultiMatchResult:
        automaton = self._automaton
        if automaton is None:
            return self.vm.run(text, max_steps)
        data = (
            text
            if isinstance(text, bytes)
            else as_input_bytes(text, what="input text")
        )
        if self._checks is not None:
            self._checks.inc()
        hits = automaton.find_payloads(data, universe=self.filtered_ids)
        candidates = hits | self.always_candidates
        if not candidates:
            if self._skips is not None:
                self._skips.inc()
            return MultiMatchResult(
                matched_ids=frozenset(),
                patterns=dict(self.multi_program.patterns),
            )
        if self._candidates is not None:
            self._candidates.inc()
        return self.vm.run(data, max_steps, candidates=candidates)


__all__ = ["PrefilteredMultiMatchVM"]
