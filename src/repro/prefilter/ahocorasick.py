"""Byte-level Aho-Corasick automaton for multi-pattern prefiltering.

The multimatch engine's IDS scenario carries one required literal per
rule; the prefilter's job is "which rules' literals occur in this
event?" so the VM only needs to verify that candidate subset.  A
compiled :mod:`re` alternation answers the *boolean* version of that at
C speed but cannot attribute hits per rule when literals overlap — in
``b"aba"`` the alternation ``ab|ba`` reports only ``ab`` because the
stdlib scanner resumes *after* each match, silently dropping ``ba``.
Attribution needs the classic goto/fail/output automaton, which visits
every position exactly once and reports every literal ending there
(output links folded into each node at build time).

The pure-Python per-byte walk would otherwise be slower than the VM it
is meant to shortcut, so the automaton only walks bytes while *inside*
a partial literal: whenever it sits at the root it jumps straight to
the next occurrence of any literal's first byte with a compiled
character-class :meth:`re.Pattern.search` — one C call per candidate
region, which on sparse corpora skips essentially the whole input.
"""

from __future__ import annotations

import re
from collections import deque
from typing import FrozenSet, Iterable, Optional, Set, Tuple


def byte_class_pattern(byte_values: Iterable[int]) -> "re.Pattern[bytes]":
    """Compile ``[...]`` over raw byte values (shared with scanner.py)."""
    members = b"".join(re.escape(bytes((value,))) for value in sorted(set(byte_values)))
    return re.compile(b"[" + members + b"]")


class AhoCorasick:
    """Multi-literal matcher with per-literal payload attribution.

    Built from ``(literal, payload)`` pairs; :meth:`find_payloads`
    returns the set of payloads whose literal occurs anywhere in the
    input, overlaps included.  Payloads are opaque hashables (the
    multimatch layer passes pattern ids).
    """

    def __init__(self, entries: Iterable[Tuple[bytes, object]]):
        goto = [{}]
        outputs = [set()]
        literal_count = 0
        for literal, payload in entries:
            if not literal:
                raise ValueError("Aho-Corasick literals must be non-empty")
            literal_count += 1
            node = 0
            for byte in literal:
                child = goto[node].get(byte)
                if child is None:
                    child = len(goto)
                    goto[node][byte] = child
                    goto.append({})
                    outputs.append(set())
                node = child
            outputs[node].add(payload)

        fail = [0] * len(goto)
        queue = deque(goto[0].values())
        while queue:
            node = queue.popleft()
            for byte, child in goto[node].items():
                queue.append(child)
                probe = fail[node]
                while probe and byte not in goto[probe]:
                    probe = fail[probe]
                target = goto[probe].get(byte, 0)
                fail[child] = target if target != child else 0
                # Fold the fail chain's outputs in now so the search
                # loop reads one set per node instead of chasing links.
                outputs[child] |= outputs[fail[child]]

        self._goto = goto
        self._fail = fail
        self._outputs = [frozenset(out) for out in outputs]
        self.literal_count = literal_count
        self.node_count = len(goto)
        self.start_bytes: Tuple[int, ...] = tuple(sorted(goto[0]))
        self._skip_search = (
            byte_class_pattern(self.start_bytes).search if goto[0] else None
        )

    def find_payloads(
        self, data: bytes, universe: Optional[FrozenSet] = None
    ) -> FrozenSet:
        """All payloads whose literal occurs in ``data``.

        ``universe`` enables early exit: once every payload in it has
        been seen there is nothing left to learn and the scan stops.
        """
        skip_search = self._skip_search
        if skip_search is None:
            return frozenset()
        goto = self._goto
        fail = self._fail
        outputs = self._outputs
        found: Set = set()
        node = 0
        position = 0
        length = len(data)
        while position < length:
            if node == 0:
                hit = skip_search(data, position)
                if hit is None:
                    break
                position = hit.start()
            byte = data[position]
            while True:
                child = goto[node].get(byte)
                if child is not None:
                    node = child
                    break
                if node == 0:
                    break
                node = fail[node]
            out = outputs[node]
            if out:
                found |= out
                if universe is not None and found >= universe:
                    break
            position += 1
        return frozenset(found)

    def contains_any(self, data: bytes) -> bool:
        """Does any literal occur in ``data``? (boolean fast path)"""
        if self._skip_search is None:
            return False
        return bool(self.find_payloads(data, universe=_FIRST_HIT))


class _StopOnFirstHit(frozenset):
    """A universe every non-empty found-set satisfies (>= any singleton
    works because ``found >= frozenset()`` is checked only after a hit)."""


_FIRST_HIT: FrozenSet = _StopOnFirstHit()


__all__ = ["AhoCorasick", "byte_class_pattern"]
