"""Literal prefilters and the lazy DFA (the corpus-scan fast path).

Layered per :doc:`docs/performance` ("Prefilters and the lazy DFA"):

1. :mod:`~repro.prefilter.analysis` — compile-time extraction of
   required literals, forced prefixes, and first-byte sets from the
   optimized ``regex``-dialect module, with an explicit inert verdict.
2. :mod:`~repro.prefilter.scanner` / :mod:`~repro.prefilter.ahocorasick`
   — chunk rejection built from CPython's C-speed primitives
   (``bytes.find``, compiled :mod:`re` alternations and classes, an
   Aho-Corasick automaton for per-rule attribution in multimatch).
3. :mod:`~repro.prefilter.lazydfa` — on-the-fly determinization of the
   Thompson program bounded by ``Budget.max_dfa_states``, used to
   verify prefilter survivors and to scan prefilter-inert patterns,
   always falling back to the NFA VM on blowup.

Nothing here changes verdicts: every stage either rejects on a proven
necessary condition or defers to an exact matcher.
"""

from .ahocorasick import AhoCorasick
from .analysis import (
    INERT_ANALYSIS,
    PrefilterAnalysis,
    analyze_module,
    analyze_pattern,
)
from .lazydfa import (
    DEFAULT_MAX_DFA_STATES,
    LazyDFA,
    LazyDFABlowup,
    LazyDFAMatcher,
)
from .multi import PrefilteredMultiMatchVM
from .scanner import (
    PREFILTER_MODES,
    PrefilteredMatcher,
    build_chunk_filter,
    describe_plan,
)

__all__ = [
    "AhoCorasick",
    "DEFAULT_MAX_DFA_STATES",
    "INERT_ANALYSIS",
    "LazyDFA",
    "LazyDFABlowup",
    "LazyDFAMatcher",
    "PREFILTER_MODES",
    "PrefilterAnalysis",
    "PrefilteredMatcher",
    "PrefilteredMultiMatchVM",
    "analyze_module",
    "analyze_pattern",
    "build_chunk_filter",
    "describe_plan",
]
