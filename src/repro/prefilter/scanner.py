"""Chunk-level prefilter scanners and the prefiltered matcher facade.

This is the layer the engine actually calls.  It turns a
:class:`~repro.prefilter.analysis.PrefilterAnalysis` into a cheap
*chunk rejection predicate* built from CPython's C-speed primitives —

* one required literal → the ``in`` operator (``bytes.find``, memchr
  speed),
* several branch literals → one compiled :mod:`re` alternation of
  escaped literals (sound for "any branch literal present", which is
  all the boolean chunk test needs),
* no literal but a small first-byte set → a compiled ``[...]``
  character class,
* a start-anchored forced prefix → ``bytes.startswith``,

— and composes it with a verify step: the VM (``literal`` mode) or the
budget-bounded lazy DFA with VM fallback (``auto`` mode).  The
predicate is *necessary-condition only*: a chunk it rejects provably
cannot match (the Hypothesis soundness suite), and a chunk it passes is
always re-verified, so the prefilter can never flip a verdict — exactly
the contract that lets the fuzz oracles diff this path against the bare
VM.

In ``auto`` mode a prefilter-inert pattern (leading ``.*`` over
non-literal structure, alternation branch with no forced bytes, …)
still gets the lazy DFA for its full scans; ``literal`` mode degrades
to the plain VM, and ``off`` *is* the plain VM.
"""

from __future__ import annotations

import re
from typing import Callable, List, Optional, Union

from ..isa.program import Program
from ..vm.thompson import MatchResult, ThompsonVM, _as_bytes
from .ahocorasick import byte_class_pattern
from .analysis import INERT_ANALYSIS, PrefilterAnalysis
from .lazydfa import DEFAULT_MAX_DFA_STATES, LazyDFAMatcher

#: Recognized ``CompileOptions.prefilter`` / ``--prefilter`` values.
PREFILTER_MODES = ("off", "literal", "auto")


def build_chunk_filter(
    analysis: PrefilterAnalysis,
) -> Optional[Callable[[bytes], bool]]:
    """A predicate ``chunk may match`` from the analysis, or ``None``.

    ``None`` means the analysis is inert — nothing cheap can reject
    chunks and callers must verify everything.
    """
    stages: List[Callable[[bytes], bool]] = []
    if analysis.anchored_start and analysis.prefix:
        prefix = analysis.prefix
        stages.append(lambda data: data.startswith(prefix))
    if analysis.literals:
        if len(analysis.literals) == 1:
            literal = analysis.literals[0]
            stages.append(lambda data: literal in data)
        else:
            search = re.compile(
                b"|".join(re.escape(literal) for literal in analysis.literals)
            ).search
            stages.append(lambda data: search(data) is not None)
    elif analysis.first_bytes:
        search = byte_class_pattern(analysis.first_bytes).search
        stages.append(lambda data: search(data) is not None)
    if not stages:
        return None
    if len(stages) == 1:
        return stages[0]
    first, second = stages
    return lambda data: first(data) and second(data)


def describe_plan(analysis: PrefilterAnalysis, mode: str) -> dict:
    """A JSON-friendly description of the chosen stages (span attrs)."""
    stages: List[str] = []
    if mode != "off" and not analysis.inert:
        if analysis.anchored_start and analysis.prefix:
            stages.append(f"prefix({len(analysis.prefix)})")
        if analysis.literals:
            stages.append(f"literal({len(analysis.literals)})")
        elif analysis.first_bytes:
            stages.append(f"first-bytes({len(analysis.first_bytes)})")
    stages.append("lazy-dfa" if mode == "auto" else "vm")
    return {
        "mode": mode,
        "stages": stages,
        "inert": analysis.inert,
        "inert_reason": analysis.inert_reason,
    }


class PrefilteredMatcher:
    """Prefilter + verify pipeline with the VM's ``match`` interface.

    Drop-in for the bare VM in the engine's per-chunk loop: same input
    handling, same :class:`MatchResult` verdicts (property-tested), plus
    ``repro_prefilter_*`` counters when a metrics registry is supplied.
    """

    def __init__(
        self,
        program: Program,
        analysis: Optional[PrefilterAnalysis] = None,
        mode: str = "auto",
        max_dfa_states: Optional[int] = DEFAULT_MAX_DFA_STATES,
        max_vm_steps: Optional[int] = None,
        metrics=None,
    ):
        if mode not in PREFILTER_MODES:
            raise ValueError(
                f"prefilter mode must be one of {PREFILTER_MODES}, got {mode!r}"
            )
        if analysis is None:
            analysis = getattr(program, "analysis", None) or INERT_ANALYSIS
        self.program = program
        self.analysis = analysis
        self.mode = mode
        self.max_vm_steps = max_vm_steps
        self._metrics = metrics if metrics is not None and metrics.enabled else None
        self.vm = ThompsonVM(program)
        self._filter = None if mode == "off" else build_chunk_filter(analysis)
        self._dfa_matcher = (
            LazyDFAMatcher(
                program,
                max_states=max_dfa_states,
                max_vm_steps=max_vm_steps,
                metrics=metrics,
                vm=self.vm,
            )
            if mode == "auto"
            else None
        )
        self.plan = describe_plan(analysis, mode)
        self._checks = None
        self._skips = None
        self._candidates = None
        if metrics is not None and metrics.enabled and self._filter is not None:
            self._checks = metrics.counter(
                "repro_prefilter_checks_total",
                help_text="chunks examined by the literal/first-byte prefilter",
            )
            self._skips = metrics.counter(
                "repro_prefilter_skips_total",
                help_text="chunks rejected without entering the verify step",
            )
            self._candidates = metrics.counter(
                "repro_prefilter_candidates_total",
                help_text="chunks the prefilter passed through to verification",
            )

    def match(self, text: Union[str, bytes]) -> MatchResult:
        data = text if isinstance(text, bytes) else _as_bytes(text)
        chunk_filter = self._filter
        if chunk_filter is not None:
            if self._checks is not None:
                self._checks.inc()
            if not chunk_filter(data):
                if self._skips is not None:
                    self._skips.inc()
                return MatchResult(False, None)
            if self._candidates is not None:
                self._candidates.inc()
        if self._dfa_matcher is not None:
            return self._dfa_matcher.match(data)
        return self.vm.run(data, self.max_vm_steps, metrics=self._metrics)


__all__ = [
    "PREFILTER_MODES",
    "PrefilteredMatcher",
    "build_chunk_filter",
    "describe_plan",
]
