"""Execution back-ends behind one interface.

The paper's future work (§8) argues for "a standard MLIR-based
multi-dialect compilation flow for REs execution engines" where the
high-level ``regex`` dialect front-end feeds multiple back-ends.  This
module is that seam: every back-end consumes the same parsed/optimized
high-level representation and returns a matcher with a uniform
``matches(text) -> bool`` interface.

Available back-ends:

========== ==============================================================
``cicero``     the paper's DSA — compile to the Cicero ISA, execute on
               the golden-model VM
``cicero-sim`` same program on the cycle-level simulator (timing too)
``nfa``        CPU-baseline breadth-first NFA simulation
``dfa``        CPU-baseline table-driven DFA (subset-constructed,
               minimized; may blow up — bound with ``max_dfa_states``)
========== ==============================================================

>>> from repro.backends import compile_with_backend
>>> matcher = compile_with_backend("th(is|at)", "dfa")
>>> matcher.matches("say that")
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

from .arch.config import ArchConfig
from .arch.system import CiceroSystem
from .automata.dfa import determinize, minimize
from .automata.nfa import nfa_from_regex_module
from .compiler import CompileOptions, NewCompiler
from .dialects.regex.from_ast import pattern_to_regex_dialect
from .dialects.regex.transforms.pipeline import regex_optimization_passes
from .frontend.parser import parse_regex
from .ir.pass_manager import PassManager
from .vm.thompson import ThompsonVM


class Matcher:
    """Uniform matcher interface; back-ends subclass."""

    backend_name: str = "?"

    def matches(self, text: Union[str, bytes]) -> bool:
        raise NotImplementedError


@dataclass
class CiceroMatcher(Matcher):
    vm: ThompsonVM
    backend_name: str = "cicero"

    def matches(self, text: Union[str, bytes]) -> bool:
        return bool(self.vm.run(text))


@dataclass
class CiceroSimMatcher(Matcher):
    system: CiceroSystem
    backend_name: str = "cicero-sim"

    def matches(self, text: Union[str, bytes]) -> bool:
        return self.system.run(text).matched

    def run(self, text: Union[str, bytes]):
        """Full simulation result (cycles, stats) — simulator-specific."""
        return self.system.run(text)


@dataclass
class NFAMatcher(Matcher):
    nfa: object
    backend_name: str = "nfa"

    def matches(self, text: Union[str, bytes]) -> bool:
        return self.nfa.matches(text)


@dataclass
class DFAMatcher(Matcher):
    dfa: object
    backend_name: str = "dfa"

    def matches(self, text: Union[str, bytes]) -> bool:
        return self.dfa.matches(text)


def _optimized_regex_module(pattern: str, options: CompileOptions):
    """The shared front half: parse → regex dialect → §3.2 transforms."""
    module = pattern_to_regex_dialect(parse_regex(pattern))
    pipeline = PassManager(verify_each=False)
    effective = options.effective()
    for transform in regex_optimization_passes(
        enable_simplify_subregex=effective.simplify_subregex,
        enable_factorize=effective.factorize_alternations,
        enable_boundary_quantifier=effective.boundary_quantifier,
    ):
        pipeline.add(transform)
    pipeline.run(module)
    return module


def compile_with_backend(
    pattern: str,
    backend: str = "cicero",
    options: Optional[CompileOptions] = None,
    config: Optional[ArchConfig] = None,
    max_dfa_states: Optional[int] = 50_000,
) -> Matcher:
    """Compile through the shared high-level flow, finish per back-end."""
    options = options if options is not None else CompileOptions()
    if backend in ("cicero", "cicero-sim"):
        program = NewCompiler(options).compile(pattern).program
        if backend == "cicero":
            return CiceroMatcher(ThompsonVM(program))
        return CiceroSimMatcher(
            CiceroSystem(program, config if config is not None else ArchConfig.new(16))
        )
    module = _optimized_regex_module(pattern, options)
    nfa = nfa_from_regex_module(module)
    if backend == "nfa":
        return NFAMatcher(nfa)
    if backend == "dfa":
        return DFAMatcher(minimize(determinize(nfa, max_states=max_dfa_states)))
    raise ValueError(
        f"unknown backend {backend!r}; available: {sorted(BACKENDS)}"
    )


BACKENDS: Dict[str, str] = {
    "cicero": "Cicero ISA on the golden-model VM",
    "cicero-sim": "Cicero ISA on the cycle-level simulator",
    "nfa": "breadth-first NFA simulation (CPU baseline)",
    "dfa": "table-driven minimized DFA (CPU baseline)",
}
