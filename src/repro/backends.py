"""Execution back-ends behind one interface.

The paper's future work (§8) argues for "a standard MLIR-based
multi-dialect compilation flow for REs execution engines" where the
high-level ``regex`` dialect front-end feeds multiple back-ends.  This
module is that seam: every back-end consumes the same parsed/optimized
high-level representation and returns a matcher with a uniform
``matches(text) -> bool`` interface.

The front half of the flow (parse → ``regex`` dialect → §3.2
transforms) runs **once per pattern**, no matter how many back-ends are
built from it: :func:`compile_backends` fans a single optimized module
out to every requested back-end, and :func:`compile_with_backend` is
the single-back-end convenience over it.

Every matcher accepts ``str | bytes`` uniformly and raises the typed
:class:`~repro.runtime.errors.InputEncodingError` for text outside
latin-1, regardless of back-end.

Available back-ends:

========== ==============================================================
``cicero``     the paper's DSA — compile to the Cicero ISA, execute on
               the golden-model VM
``cicero-sim`` same program on the cycle-level simulator (timing too)
``nfa``        CPU-baseline breadth-first NFA simulation
``dfa``        CPU-baseline table-driven DFA (subset-constructed,
               minimized; may blow up — bound with ``max_dfa_states``)
========== ==============================================================

>>> from repro.backends import compile_with_backend
>>> matcher = compile_with_backend("th(is|at)", "dfa")
>>> matcher.matches("say that")
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from .arch.config import ArchConfig
from .arch.system import CiceroSystem
from .automata.dfa import determinize, minimize
from .automata.nfa import nfa_from_regex_module
from .compiler import CompileOptions
from .dialects.cicero.codegen import generate_program
from .dialects.cicero.lowering import lower_to_cicero
from .dialects.cicero.transforms.dce import DeadCodeEliminationPass
from .dialects.cicero.transforms.jump_simplification import JumpSimplificationPass
from .dialects.regex.from_ast import pattern_to_regex_dialect
from .dialects.regex.transforms.pipeline import regex_optimization_passes
from .frontend.parser import parse_regex
from .ir.pass_manager import PassManager, pipeline_from_names
from .isa.program import Program
from .runtime.budget import DEFAULT_BUDGET
from .runtime.guards import check_pattern_budget
from .vm.thompson import ThompsonVM

BACKEND_COMPILER_NAME = "new-mlir-backend"


class Matcher:
    """Uniform matcher interface; back-ends subclass."""

    backend_name: str = "?"

    def matches(self, text: Union[str, bytes]) -> bool:
        raise NotImplementedError


@dataclass
class CiceroMatcher(Matcher):
    vm: ThompsonVM
    backend_name: str = "cicero"

    def matches(self, text: Union[str, bytes]) -> bool:
        return bool(self.vm.run(text))


@dataclass
class CiceroSimMatcher(Matcher):
    system: CiceroSystem
    backend_name: str = "cicero-sim"

    def matches(self, text: Union[str, bytes]) -> bool:
        return self.system.run(text).matched

    def run(self, text: Union[str, bytes]):
        """Full simulation result (cycles, stats) — simulator-specific."""
        return self.system.run(text)


@dataclass
class NFAMatcher(Matcher):
    nfa: object
    backend_name: str = "nfa"

    def matches(self, text: Union[str, bytes]) -> bool:
        return self.nfa.matches(text)


@dataclass
class DFAMatcher(Matcher):
    dfa: object
    backend_name: str = "dfa"

    def matches(self, text: Union[str, bytes]) -> bool:
        return self.dfa.matches(text)


def _optimized_regex_module(pattern: str, options: CompileOptions):
    """The shared front half: parse → regex dialect → §3.2 transforms.

    Budget checks mirror :class:`~repro.compiler.NewCompiler`: pattern
    length and counted-repetition expansion are rejected before any
    lowering spends time on them.
    """
    budget = options.budget if options.budget is not None else DEFAULT_BUDGET
    budget.check_pattern_length(pattern)
    ast = parse_regex(pattern, max_depth=budget.max_nesting_depth)
    check_pattern_budget(ast, budget)
    module = pattern_to_regex_dialect(ast)
    effective = options.effective()
    if effective.regex_pipeline is not None:
        pipeline = pipeline_from_names(
            effective.regex_pipeline, require_prefix="regex-"
        )
    else:
        pipeline = PassManager(verify_each=False)
        for transform in regex_optimization_passes(
            enable_simplify_subregex=effective.simplify_subregex,
            enable_factorize=effective.factorize_alternations,
            enable_boundary_quantifier=effective.boundary_quantifier,
        ):
            pipeline.add(transform)
    pipeline.run(module)
    return module


def program_from_regex_module(
    module, pattern: str, options: CompileOptions
) -> Program:
    """The Cicero back half: lowering → §5 transforms → codegen.

    Consumes an already parsed/optimized ``regex``-dialect module, so
    building the Cicero program next to an NFA/DFA from the same module
    never reparses the pattern.
    """
    effective = options.effective()
    budget = options.budget if options.budget is not None else DEFAULT_BUDGET
    cicero_module = lower_to_cicero(module)
    if effective.cicero_pipeline is not None:
        lowlevel = pipeline_from_names(
            effective.cicero_pipeline, require_prefix="cicero-"
        )
    else:
        lowlevel = PassManager(verify_each=False)
        if effective.jump_simplification:
            lowlevel.add(JumpSimplificationPass())
        if effective.dead_code_elimination:
            lowlevel.add(DeadCodeEliminationPass())
    lowlevel.run(cicero_module)
    program = generate_program(
        cicero_module.body.operations[0],
        source_pattern=pattern,
        compiler=BACKEND_COMPILER_NAME,
    )
    # Attach the compile-time prefilter facts here too, so programs
    # built through the back-end seam (engine cache misses, fuzz
    # oracles) carry the same metadata as NewCompiler output.
    from .prefilter.analysis import analyze_module

    program.analysis = analyze_module(module)
    budget.check_program_size(len(program), pattern)
    return program


def compile_backends(
    pattern: str,
    backends: Sequence[str],
    options: Optional[CompileOptions] = None,
    config: Optional[ArchConfig] = None,
    max_dfa_states: Optional[int] = 50_000,
) -> Dict[str, Matcher]:
    """Build several back-ends from **one** parsed/optimized module.

    The frontend and the §3.2 high-level transforms run exactly once;
    each requested back-end then finishes from the shared module (the
    two Cicero flavours additionally share one compiled program, and
    ``dfa`` determinizes the same NFA ``nfa`` would execute).
    """
    options = options if options is not None else CompileOptions()
    unknown = [name for name in backends if name not in BACKENDS]
    if unknown:
        raise ValueError(
            f"unknown backend {unknown[0]!r}; available: {sorted(BACKENDS)}"
        )
    module = _optimized_regex_module(pattern, options)
    matchers: Dict[str, Matcher] = {}
    program: Optional[Program] = None
    nfa = None
    for backend in backends:
        if backend in ("cicero", "cicero-sim"):
            if program is None:
                program = program_from_regex_module(module, pattern, options)
            if backend == "cicero":
                matchers[backend] = CiceroMatcher(ThompsonVM(program))
            else:
                matchers[backend] = CiceroSimMatcher(
                    CiceroSystem(
                        program,
                        config if config is not None else ArchConfig.new(16),
                    )
                )
        else:
            if nfa is None:
                nfa = nfa_from_regex_module(module)
            if backend == "nfa":
                matchers[backend] = NFAMatcher(nfa)
            else:  # dfa
                matchers[backend] = DFAMatcher(
                    minimize(determinize(nfa, max_states=max_dfa_states))
                )
    return matchers


def compile_with_backend(
    pattern: str,
    backend: str = "cicero",
    options: Optional[CompileOptions] = None,
    config: Optional[ArchConfig] = None,
    max_dfa_states: Optional[int] = 50_000,
) -> Matcher:
    """Compile through the shared high-level flow, finish per back-end."""
    return compile_backends(
        pattern,
        [backend],
        options=options,
        config=config,
        max_dfa_states=max_dfa_states,
    )[backend]


BACKENDS: Dict[str, str] = {
    "cicero": "Cicero ISA on the golden-model VM",
    "cicero-sim": "Cicero ISA on the cycle-level simulator",
    "nfa": "breadth-first NFA simulation (CPU baseline)",
    "dfa": "table-driven minimized DFA (CPU baseline)",
}
