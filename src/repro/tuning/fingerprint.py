"""Pattern-shape fingerprints: the tuner's cache key.

A fingerprint captures the *structural class* of a pattern — the
features that determine how the pass pipeline interacts with it — while
deliberately ignoring which concrete bytes it matches.  Two patterns
that differ only by a renaming of their literals (``abc`` vs ``xyz``,
``[abc]`` vs ``[qrs]``) get the same fingerprint, so one tuned pipeline
serves the whole equivalence class.  That is exactly the granularity at
which pass ordering matters: Eq. 1 ``D_offset`` and emitted code size
are functions of alternation arity, quantifier shapes, literal density
and anchoring — never of the byte values themselves.

Features are *bucketed* (arity capped, density in deciles, depth
capped) so a suite of structurally similar generated patterns collapses
onto a handful of fingerprints and a shipped profile generalizes beyond
the exact seed it was tuned on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from ..frontend.ast_nodes import (
    Alternation,
    AnyChar,
    Char,
    CharClass,
    Dollar,
    Pattern,
    SubRegex,
    UNBOUNDED,
)
from ..frontend.parser import parse_regex
from ..runtime.budget import Budget, DEFAULT_BUDGET

#: Fingerprint schema version — bump when the feature set changes so a
#: stale profile can never silently key a new-format lookup.
FINGERPRINT_SCHEMA = 1

#: Quantifier shape classes, in canonical order.
QUANTIFIER_KINDS = ("opt", "star", "plus", "at-least", "exact", "bounded")


def _quantifier_kind(minimum: int, maximum: int) -> Optional[str]:
    """Classify a quantifier; ``None`` for the unquantified ``(1, 1)``."""
    if (minimum, maximum) == (1, 1):
        return None
    if maximum == UNBOUNDED:
        if minimum == 0:
            return "star"
        if minimum == 1:
            return "plus"
        return "at-least"
    if (minimum, maximum) == (0, 1):
        return "opt"
    if minimum == maximum:
        return "exact"
    return "bounded"


@dataclass(frozen=True)
class PatternFingerprint:
    """The bucketed structural features plus their stable digest."""

    #: Widest alternation in the pattern, capped at 6 (6 == "6 or more").
    max_alternation_arity: int
    #: Total alternation branches across the AST, capped at 32.
    total_branches: int
    #: Canonical sorted tuple of quantifier shape classes present.
    quantifier_kinds: Tuple[str, ...]
    #: ``round(10 * literal_atoms / atoms)`` — 0 (no literals) to 10.
    literal_density_decile: int
    #: Character classes + wildcards per ten atoms, capped at 10.
    class_density_decile: int
    #: Group-nesting depth, capped at 4 (4 == "4 or deeper").
    depth: int
    #: ``^`` anchoring (paper §3.1: disables the implicit ``.*`` prefix).
    anchored_start: bool
    #: ``$`` anchoring (disables the implicit ``.*`` suffix).
    anchored_end: bool

    @property
    def digest(self) -> str:
        """Stable 16-hex-character key for profile lookup."""
        canonical = (
            FINGERPRINT_SCHEMA,
            self.max_alternation_arity,
            self.total_branches,
            self.quantifier_kinds,
            self.literal_density_decile,
            self.class_density_decile,
            self.depth,
            self.anchored_start,
            self.anchored_end,
        )
        return hashlib.sha256(repr(canonical).encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "schema": FINGERPRINT_SCHEMA,
            "digest": self.digest,
            "max_alternation_arity": self.max_alternation_arity,
            "total_branches": self.total_branches,
            "quantifier_kinds": list(self.quantifier_kinds),
            "literal_density_decile": self.literal_density_decile,
            "class_density_decile": self.class_density_decile,
            "depth": self.depth,
            "anchored_start": self.anchored_start,
            "anchored_end": self.anchored_end,
        }


class _Features:
    """Mutable accumulator for one AST walk."""

    def __init__(self) -> None:
        self.atoms = 0
        self.literal_atoms = 0
        self.class_atoms = 0
        self.max_arity = 1
        self.total_branches = 0
        self.quantifiers: set = set()
        self.max_depth = 0


def _walk(alternation: Alternation, depth: int, features: _Features) -> None:
    features.max_depth = max(features.max_depth, depth)
    arity = len(alternation.branches)
    features.max_arity = max(features.max_arity, arity)
    features.total_branches += arity
    for branch in alternation.branches:
        for piece in branch.pieces:
            kind = _quantifier_kind(piece.min, piece.max)
            if kind is not None:
                features.quantifiers.add(kind)
            atom = piece.atom
            features.atoms += 1
            if isinstance(atom, Char):
                features.literal_atoms += 1
            elif isinstance(atom, (CharClass, AnyChar)):
                # Renaming-invariant: a class contributes its *presence*
                # (and the wildcard counts as the widest class), never
                # its member identities.
                features.class_atoms += 1
            elif isinstance(atom, SubRegex):
                _walk(atom.body, depth + 1, features)
            elif isinstance(atom, Dollar):
                pass


def fingerprint_ast(pattern: Pattern) -> PatternFingerprint:
    """Fingerprint a parsed :class:`~repro.frontend.ast_nodes.Pattern`."""
    features = _Features()
    _walk(pattern.root, 0, features)
    atoms = max(features.atoms, 1)
    return PatternFingerprint(
        max_alternation_arity=min(features.max_arity, 6),
        total_branches=min(features.total_branches, 32),
        quantifier_kinds=tuple(
            kind for kind in QUANTIFIER_KINDS if kind in features.quantifiers
        ),
        literal_density_decile=round(10 * features.literal_atoms / atoms),
        class_density_decile=min(
            round(10 * features.class_atoms / atoms), 10
        ),
        depth=min(features.max_depth, 4),
        anchored_start=not pattern.has_prefix,
        anchored_end=not pattern.has_suffix,
    )


def fingerprint_pattern(
    pattern: str, budget: Optional[Budget] = None
) -> PatternFingerprint:
    """Parse ``pattern`` and fingerprint it.

    Raises the frontend's typed errors for malformed patterns — callers
    resolving ``optimize="auto"`` catch them and fall back to the
    default pipeline, letting the compiler proper report the rejection.
    """
    effective = budget if budget is not None else DEFAULT_BUDGET
    ast = parse_regex(pattern, max_depth=effective.max_nesting_depth)
    return fingerprint_ast(ast)


__all__ = [
    "FINGERPRINT_SCHEMA",
    "PatternFingerprint",
    "QUANTIFIER_KINDS",
    "fingerprint_ast",
    "fingerprint_pattern",
]
