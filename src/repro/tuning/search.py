"""Seeded search over valid pass pipelines.

The RL-for-MLIR framing (PAPERS.md) treats pass selection as a
sequential decision problem; this module implements the two classic
baselines — pure random search and first-improvement hill climbing —
behind a :class:`SearchStrategy` interface narrow enough that a learned
policy drops in later: a strategy only ever *proposes* the next
:class:`PipelineSpec` and *observes* its scored cost.

Determinism is load-bearing: the whole search is driven by one
``random.Random(seed)``, candidate costs are memoized by spec, and the
wall-clock bound is only consulted *between* evaluations — so the same
seed with the same evaluation budget replays to a bit-identical tuned
profile (covered by ``tests/tuning/test_search.py`` and the
reproducibility suite).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir.diagnostics import IRError, ReproError
from ..ir.pass_manager import registered_pass_names
from ..observability import AnyMetrics, AnyTracer, as_metrics, as_tracer
from .cost import CostBreakdown, CostModel, CostWeights, DEFAULT_WEIGHTS

#: The paper's hand-ordered default pipeline (§3.2 order, then §5).
DEFAULT_REGEX_PIPELINE = (
    "regex-simplify-subregex",
    "regex-factorize-alternations",
    "regex-boundary-quantifier",
)
DEFAULT_CICERO_PIPELINE = (
    "cicero-jump-simplification",
    "cicero-dce",
)

#: Search-space bounds: pipelines longer than this never pay for their
#: extra fixpoint sweeps, and bounding the space keeps random proposals
#: meaningfully dense.
MAX_REGEX_PASSES = 5
MAX_CICERO_PASSES = 4

STRATEGIES = ("hill", "random")


@dataclass(frozen=True)
class PipelineSpec:
    """An ordered, possibly repeating, pass pipeline for both dialects."""

    regex_passes: Tuple[str, ...] = DEFAULT_REGEX_PIPELINE
    cicero_passes: Tuple[str, ...] = DEFAULT_CICERO_PIPELINE

    def describe(self) -> str:
        return (
            ",".join(self.regex_passes) + " | " + ",".join(self.cicero_passes)
        )

    def to_dict(self) -> Dict[str, List[str]]:
        return {
            "regex_passes": list(self.regex_passes),
            "cicero_passes": list(self.cicero_passes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Sequence[str]]) -> "PipelineSpec":
        return cls(
            regex_passes=tuple(payload.get("regex_passes", ())),
            cicero_passes=tuple(payload.get("cicero_passes", ())),
        )


DEFAULT_SPEC = PipelineSpec()


def available_passes() -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Registered (regex, cicero) pass names the search may draw from."""
    return (
        tuple(registered_pass_names("regex-")),
        tuple(registered_pass_names("cicero-")),
    )


class SearchStrategy:
    """Proposal interface; implement these two methods to plug in RL."""

    name = "abstract"

    def reset(
        self,
        rng: random.Random,
        regex_pool: Tuple[str, ...],
        cicero_pool: Tuple[str, ...],
    ) -> None:
        self.rng = rng
        self.regex_pool = regex_pool
        self.cicero_pool = cicero_pool

    def propose(
        self, best_spec: PipelineSpec, best_cost: Optional[CostBreakdown]
    ) -> PipelineSpec:
        raise NotImplementedError

    def observe(self, spec: PipelineSpec, cost: Optional[CostBreakdown]) -> None:
        """Called after scoring; ``None`` marks an invalid candidate."""


class RandomSearch(SearchStrategy):
    """Uniform sampling over bounded pipelines (with replacement)."""

    name = "random"

    def _sample(self, pool: Tuple[str, ...], max_len: int) -> Tuple[str, ...]:
        length = self.rng.randint(0, max_len)
        return tuple(self.rng.choice(pool) for _ in range(length))

    def propose(
        self, best_spec: PipelineSpec, best_cost: Optional[CostBreakdown]
    ) -> PipelineSpec:
        return PipelineSpec(
            regex_passes=self._sample(self.regex_pool, MAX_REGEX_PASSES),
            cicero_passes=self._sample(self.cicero_pool, MAX_CICERO_PASSES),
        )


class HillClimbSearch(SearchStrategy):
    """First-improvement hill climbing from the incumbent best.

    One mutation per proposal — swap two positions, drop one pass,
    insert a registered pass, or replace one — applied to either half
    of the incumbent.  Because the driver only ever advances the
    incumbent on strict improvement, the climb monotonically descends
    the cost surface; random restarts come for free from mutations
    that happen to rebuild a distant spec.
    """

    name = "hill"

    _MOVES = ("swap", "drop", "insert", "replace")

    def _mutate(
        self, passes: Tuple[str, ...], pool: Tuple[str, ...], max_len: int
    ) -> Tuple[str, ...]:
        rng = self.rng
        sequence = list(passes)
        move = rng.choice(self._MOVES)
        if move == "swap" and len(sequence) >= 2:
            i, j = rng.sample(range(len(sequence)), 2)
            sequence[i], sequence[j] = sequence[j], sequence[i]
        elif move == "drop" and sequence:
            del sequence[rng.randrange(len(sequence))]
        elif move == "insert" and len(sequence) < max_len:
            sequence.insert(
                rng.randint(0, len(sequence)), rng.choice(pool)
            )
        elif move == "replace" and sequence:
            sequence[rng.randrange(len(sequence))] = rng.choice(pool)
        else:
            # The drawn move was a no-op on this length; fall back to a
            # fresh insert/drop so every proposal differs structurally.
            if len(sequence) < max_len:
                sequence.insert(
                    rng.randint(0, len(sequence)), rng.choice(pool)
                )
            elif sequence:
                del sequence[rng.randrange(len(sequence))]
        return tuple(sequence)

    def propose(
        self, best_spec: PipelineSpec, best_cost: Optional[CostBreakdown]
    ) -> PipelineSpec:
        if self.rng.random() < 0.5:
            return PipelineSpec(
                regex_passes=self._mutate(
                    best_spec.regex_passes, self.regex_pool, MAX_REGEX_PASSES
                ),
                cicero_passes=best_spec.cicero_passes,
            )
        return PipelineSpec(
            regex_passes=best_spec.regex_passes,
            cicero_passes=self._mutate(
                best_spec.cicero_passes, self.cicero_pool, MAX_CICERO_PASSES
            ),
        )


def make_strategy(name: str) -> SearchStrategy:
    if name == "hill":
        return HillClimbSearch()
    if name == "random":
        return RandomSearch()
    raise ValueError(f"unknown strategy {name!r}; use one of {STRATEGIES}")


@dataclass
class TuningResult:
    """Outcome of one :func:`tune` run over one pattern set."""

    best_spec: PipelineSpec
    best_cost: CostBreakdown
    default_cost: CostBreakdown
    evaluations: int
    invalid: int
    seed: int
    strategy: str
    #: ``(spec, composite-or-None)`` per evaluation, in order — the
    #: search log the CLI persists for post-mortems.
    log: List[Tuple[PipelineSpec, Optional[float]]] = field(
        default_factory=list
    )

    @property
    def improvement(self) -> float:
        """``default/best`` composite ratio; ≥ 1.0 by construction."""
        if self.best_cost.composite == 0:
            return 1.0
        return self.default_cost.composite / self.best_cost.composite


def tune(
    patterns: Sequence[str],
    *,
    seed: int = 2025,
    strategy: str = "hill",
    max_evals: int = 48,
    seconds: Optional[float] = None,
    weights: CostWeights = DEFAULT_WEIGHTS,
    probe_text: Optional[bytes] = None,
    cost_model: Optional[CostModel] = None,
    tracer: Optional[AnyTracer] = None,
    metrics: Optional[AnyMetrics] = None,
) -> TuningResult:
    """Search for a pipeline beating the default on ``patterns``.

    The default pipeline is evaluated first and held as the incumbent,
    so ``best_cost.composite <= default_cost.composite`` always holds —
    the tuner can only *gain*.  ``max_evals`` bounds the number of
    proposals (the reproducible bound); ``seconds`` adds a wall-clock
    cutoff checked between evaluations (for CI boxes — a time-bounded
    run is machine-dependent in *how far* it searched, never in what
    any prefix of the search did).
    """
    if not patterns:
        raise ValueError("tune() needs at least one pattern")
    model = (
        cost_model
        if cost_model is not None
        else CostModel(weights=weights, probe_text=probe_text)
    )
    tracer = as_tracer(tracer)
    registry = as_metrics(metrics)
    evals_counter = registry.counter(
        "repro_tuner_evaluations_total",
        help_text="candidate pipelines scored by the auto-tuner",
    )
    improved_counter = registry.counter(
        "repro_tuner_improvements_total",
        help_text="candidates that beat the incumbent best",
    )
    invalid_counter = registry.counter(
        "repro_tuner_invalid_candidates_total",
        help_text="candidates rejected (failed compile or budget trip)",
    )

    rng = random.Random(seed)
    searcher = make_strategy(strategy)
    regex_pool, cicero_pool = available_passes()
    searcher.reset(rng, regex_pool, cicero_pool)

    deadline = time.monotonic() + seconds if seconds is not None else None
    memo: Dict[PipelineSpec, Optional[CostBreakdown]] = {}
    log: List[Tuple[PipelineSpec, Optional[float]]] = []
    invalid = 0

    with tracer.span(
        "tuning.search",
        strategy=searcher.name,
        seed=seed,
        patterns=len(patterns),
        max_evals=max_evals,
    ) as root:

        def score(spec: PipelineSpec) -> Optional[CostBreakdown]:
            if spec in memo:
                return memo[spec]
            with tracer.span("tuning.candidate", spec=spec.describe()) as span:
                try:
                    cost = model.evaluate(patterns, spec)
                except ReproError as error:
                    memo[spec] = None
                    if tracer.enabled:
                        span.set(invalid=True, error=getattr(error, "code", ""))
                    return None
                if tracer.enabled:
                    span.set(**cost.to_dict())
            memo[spec] = cost
            return cost

        default_cost = score(DEFAULT_SPEC)
        if default_cost is None:
            raise IRError(
                "the default pipeline failed to compile the pattern set; "
                "nothing to tune"
            )
        evals_counter.inc()
        log.append((DEFAULT_SPEC, default_cost.composite))
        best_spec, best_cost = DEFAULT_SPEC, default_cost

        for _ in range(max_evals):
            if deadline is not None and time.monotonic() >= deadline:
                break
            spec = searcher.propose(best_spec, best_cost)
            cost = score(spec)
            searcher.observe(spec, cost)
            evals_counter.inc()
            log.append(
                (spec, cost.composite if cost is not None else None)
            )
            if cost is None:
                invalid += 1
                invalid_counter.inc()
                continue
            if cost.composite < best_cost.composite:
                best_spec, best_cost = spec, cost
                improved_counter.inc()
        if tracer.enabled:
            root.set(
                evaluations=len(log),
                best_composite=best_cost.composite,
                default_composite=default_cost.composite,
                improvement=(
                    default_cost.composite / best_cost.composite
                    if best_cost.composite
                    else 1.0
                ),
            )

    return TuningResult(
        best_spec=best_spec,
        best_cost=best_cost,
        default_cost=default_cost,
        evaluations=len(log),
        invalid=invalid,
        seed=seed,
        strategy=searcher.name,
        log=log,
    )


__all__ = [
    "DEFAULT_CICERO_PIPELINE",
    "DEFAULT_REGEX_PIPELINE",
    "DEFAULT_SPEC",
    "HillClimbSearch",
    "MAX_CICERO_PASSES",
    "MAX_REGEX_PASSES",
    "PipelineSpec",
    "RandomSearch",
    "STRATEGIES",
    "SearchStrategy",
    "TuningResult",
    "available_passes",
    "make_strategy",
    "tune",
]
