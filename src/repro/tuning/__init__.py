"""Search-based pass-pipeline auto-tuning (``docs/tuning.md``).

The paper hand-orders its passes (§3.2 high-level rewrites, then the §5
low-level cleanups).  This package treats that ordering as a *search
space*: a seeded, deterministic search (random sampling or hill
climbing behind a pluggable :class:`~repro.tuning.search.SearchStrategy`)
scores candidate pipelines with a composite cost model — Eq. 1
``D_offset`` + emitted code size + simulated Cicero cycles — and caches
the winners in fingerprint-keyed JSON profiles that
``compile_pattern(optimize="auto")`` resolves at compile time.

Entry points:

* :func:`~repro.tuning.search.tune` — one search over one pattern set;
* :func:`~repro.tuning.profiles.tune_patterns` — a full suite into a
  shippable :class:`~repro.tuning.profiles.TunedProfile`;
* :func:`~repro.tuning.profiles.default_store` — the process-wide
  lookup over the shipped profiles in ``tuning/profiles/``;
* ``repro tune`` — the CLI wrapper (see ``repro tune --help``).
"""

from .cost import (
    CostBreakdown,
    CostModel,
    CostWeights,
    DEFAULT_WEIGHTS,
    MAX_PROBE_BYTES,
)
from .fingerprint import (
    FINGERPRINT_SCHEMA,
    PatternFingerprint,
    fingerprint_ast,
    fingerprint_pattern,
)
from .profiles import (
    PROFILES_DIR,
    PROFILE_SCHEMA,
    ProfileEntry,
    ProfileStore,
    TunedProfile,
    TunedProfileRun,
    default_store,
    discover_profiles,
    evaluate_profile,
    group_by_fingerprint,
    reset_default_store,
    tune_patterns,
)
from .search import (
    DEFAULT_CICERO_PIPELINE,
    DEFAULT_REGEX_PIPELINE,
    DEFAULT_SPEC,
    HillClimbSearch,
    PipelineSpec,
    RandomSearch,
    STRATEGIES,
    SearchStrategy,
    TuningResult,
    available_passes,
    make_strategy,
    tune,
)
from .suites import (
    SUITE_NUM_RES,
    SUITE_SEED,
    TUNER_SUITES,
    all_suites,
    suite_patterns,
    suite_probe_text,
)

__all__ = [
    "CostBreakdown",
    "CostModel",
    "CostWeights",
    "DEFAULT_CICERO_PIPELINE",
    "DEFAULT_REGEX_PIPELINE",
    "DEFAULT_SPEC",
    "DEFAULT_WEIGHTS",
    "FINGERPRINT_SCHEMA",
    "HillClimbSearch",
    "MAX_PROBE_BYTES",
    "PROFILES_DIR",
    "PROFILE_SCHEMA",
    "PatternFingerprint",
    "PipelineSpec",
    "ProfileEntry",
    "ProfileStore",
    "RandomSearch",
    "STRATEGIES",
    "SUITE_NUM_RES",
    "SUITE_SEED",
    "SearchStrategy",
    "TUNER_SUITES",
    "TunedProfile",
    "TunedProfileRun",
    "TuningResult",
    "all_suites",
    "available_passes",
    "default_store",
    "discover_profiles",
    "evaluate_profile",
    "fingerprint_ast",
    "fingerprint_pattern",
    "group_by_fingerprint",
    "make_strategy",
    "reset_default_store",
    "suite_patterns",
    "suite_probe_text",
    "tune",
    "tune_patterns",
]
