"""Composite cost model driving the pass-pipeline search.

Three ingredients, each already surfaced by the repo's own
instrumentation (the per-pass trace spans record the first two as
before/after deltas):

* **Eq. 1 ``D_offset``** — the paper's code-locality proxy (lower is
  better; §6.1, Fig. 10);
* **code size** — emitted instruction count (Fig. 8), which bounds both
  instruction-memory pressure and cache working-set;
* **simulated cycles** — :class:`~repro.arch.simulator.CiceroSimulator`
  cycles over a small deterministic probe input, the dynamic term that
  catches orderings whose static metrics tie.

The composite is a weighted sum over a pattern *set* (a fingerprint
group or a whole suite), so the tuner optimizes the class, not one
member.  Weights are configurable; the defaults put the two static
terms on comparable footing and damp the noisier cycle term.  Every
term is deterministic — same patterns, same pipeline, same probe text
→ bit-identical cost — which is what makes the search reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence

from ..arch.config import ArchConfig
from ..arch.simulator import CiceroSimulator
from ..compiler import CompileOptions, NewCompiler
from ..runtime.budget import Budget

#: Probe inputs longer than this are truncated: the cycle term only has
#: to *rank* pipelines, and a few cache lines of input already exposes
#: the locality differences the static terms cannot see.
MAX_PROBE_BYTES = 192


@dataclass(frozen=True)
class CostWeights:
    """Weights of the composite; all terms are "lower is better"."""

    d_offset: float = 1.0
    code_size: float = 1.0
    cycles: float = 0.05

    def to_dict(self) -> Dict[str, float]:
        return {
            "d_offset": self.d_offset,
            "code_size": self.code_size,
            "cycles": self.cycles,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "CostWeights":
        return cls(
            d_offset=float(payload.get("d_offset", 1.0)),
            code_size=float(payload.get("code_size", 1.0)),
            cycles=float(payload.get("cycles", 0.05)),
        )


DEFAULT_WEIGHTS = CostWeights()


@dataclass(frozen=True)
class CostBreakdown:
    """One pipeline's cost over one pattern set, term by term."""

    d_offset: int
    code_size: int
    cycles: int
    composite: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "d_offset": self.d_offset,
            "code_size": self.code_size,
            "cycles": self.cycles,
            "composite": self.composite,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "CostBreakdown":
        return cls(
            d_offset=int(payload["d_offset"]),
            code_size=int(payload["code_size"]),
            cycles=int(payload["cycles"]),
            composite=float(payload["composite"]),
        )


class CostModel:
    """Evaluates a pipeline spec over a fixed pattern set.

    ``probe_text`` feeds the simulated-cycles term; ``None`` (or a zero
    cycle weight) skips simulation entirely, leaving a purely static
    cost.  Compilation runs *without* graceful degradation: a candidate
    pipeline that cannot compile the set must be reported to the
    search as invalid, never silently scored on a weaker pipeline.
    """

    def __init__(
        self,
        weights: CostWeights = DEFAULT_WEIGHTS,
        probe_text: Optional[bytes] = None,
        config: Optional[ArchConfig] = None,
        budget: Optional[Budget] = None,
        options: Optional[CompileOptions] = None,
    ):
        self.weights = weights
        self.probe_text = (
            probe_text[:MAX_PROBE_BYTES] if probe_text else None
        )
        self.config = config if config is not None else ArchConfig.new(16)
        self.budget = budget
        self.base_options = options if options is not None else CompileOptions()

    def options_for(self, spec) -> CompileOptions:
        """The injected-pipeline options one candidate compiles under."""
        options = replace(
            self.base_options,
            regex_pipeline=tuple(spec.regex_passes),
            cicero_pipeline=tuple(spec.cicero_passes),
        )
        if self.budget is not None and options.budget is None:
            options = replace(options, budget=self.budget)
        return options

    def evaluate(self, patterns: Sequence[str], spec) -> CostBreakdown:
        """Compile (and optionally simulate) every pattern under ``spec``.

        Raises the compiler's typed errors for invalid candidates
        (unknown pass, budget trip) — the search loop catches
        :class:`~repro.ir.diagnostics.ReproError` and discards the
        candidate.
        """
        compiler = NewCompiler(self.options_for(spec))
        total_d_offset = 0
        total_code = 0
        total_cycles = 0
        simulate = self.weights.cycles > 0 and self.probe_text is not None
        for pattern in patterns:
            result = compiler.compile(pattern)
            metrics = result.metrics
            total_d_offset += metrics.d_offset
            total_code += metrics.code_size
            if simulate:
                simulation = CiceroSimulator(self.config).run(
                    result.program, self.probe_text
                )
                total_cycles += simulation.cycles
        composite = (
            self.weights.d_offset * total_d_offset
            + self.weights.code_size * total_code
            + self.weights.cycles * total_cycles
        )
        return CostBreakdown(
            d_offset=total_d_offset,
            code_size=total_code,
            cycles=total_cycles,
            composite=composite,
        )


__all__ = [
    "CostBreakdown",
    "CostModel",
    "CostWeights",
    "DEFAULT_WEIGHTS",
    "MAX_PROBE_BYTES",
]
