"""Tuned-pipeline profiles: fingerprint-keyed, JSON-shipped, cached.

A :class:`TunedProfile` is the persisted outcome of one suite-level
search: for every pattern-shape fingerprint in the suite, the best
pipeline found, its cost breakdown and the default pipeline's cost on
the same group.  Profiles serialize to deterministic JSON (sorted keys,
fixed indent) so "same seed → identical profile" is a byte-level
guarantee, and ship inside the package under
``src/repro/tuning/profiles/`` where :class:`ProfileStore` loads them
to serve ``compile_pattern(optimize="auto")`` lookups.

A stale profile is never fatal: an entry whose pass names have since
been renamed or unregistered compiles through the graceful-degradation
ladder, which drops the tuned pipeline (``dropped_passes`` gains
``"tuned-pipeline"``) and falls back to the default pass order.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..compiler import CompileOptions
from ..observability import AnyMetrics, as_metrics
from ..runtime.budget import Budget
from .cost import CostBreakdown, CostModel, CostWeights, DEFAULT_WEIGHTS
from .fingerprint import (
    FINGERPRINT_SCHEMA,
    PatternFingerprint,
    fingerprint_pattern,
)
from .search import PipelineSpec, TuningResult, tune

PROFILE_SCHEMA = 1

#: Where the pre-tuned suite profiles ship inside the package.
PROFILES_DIR = os.path.join(os.path.dirname(__file__), "profiles")


@dataclass(frozen=True)
class ProfileEntry:
    """The tuned pipeline for one fingerprint group."""

    fingerprint: str
    spec: PipelineSpec
    cost: CostBreakdown
    default_cost: CostBreakdown
    patterns: int
    evaluations: int

    @property
    def improvement(self) -> float:
        if self.cost.composite == 0:
            return 1.0
        return self.default_cost.composite / self.cost.composite

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "spec": self.spec.to_dict(),
            "cost": self.cost.to_dict(),
            "default_cost": self.default_cost.to_dict(),
            "patterns": self.patterns,
            "evaluations": self.evaluations,
            "improvement": round(self.improvement, 6),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProfileEntry":
        return cls(
            fingerprint=payload["fingerprint"],
            spec=PipelineSpec.from_dict(payload["spec"]),
            cost=CostBreakdown.from_dict(payload["cost"]),
            default_cost=CostBreakdown.from_dict(payload["default_cost"]),
            patterns=int(payload["patterns"]),
            evaluations=int(payload["evaluations"]),
        )


@dataclass
class TunedProfile:
    """Everything one ``repro tune`` run persists."""

    suite: str
    seed: int
    strategy: str
    weights: CostWeights = DEFAULT_WEIGHTS
    entries: Dict[str, ProfileEntry] = field(default_factory=dict)
    schema: int = PROFILE_SCHEMA
    fingerprint_schema: int = FINGERPRINT_SCHEMA

    @property
    def total_cost(self) -> float:
        return sum(entry.cost.composite for entry in self.entries.values())

    @property
    def total_default_cost(self) -> float:
        return sum(
            entry.default_cost.composite for entry in self.entries.values()
        )

    @property
    def improvement(self) -> float:
        total = self.total_cost
        return self.total_default_cost / total if total else 1.0

    def to_json_dict(self) -> dict:
        return {
            "schema": self.schema,
            "fingerprint_schema": self.fingerprint_schema,
            "suite": self.suite,
            "seed": self.seed,
            "strategy": self.strategy,
            "weights": self.weights.to_dict(),
            "entries": {
                digest: entry.to_dict()
                for digest, entry in sorted(self.entries.items())
            },
        }

    def dumps(self) -> str:
        """Deterministic serialization (the bit-reproducibility unit)."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())

    @classmethod
    def from_json_dict(cls, payload: dict) -> "TunedProfile":
        return cls(
            suite=payload["suite"],
            seed=int(payload["seed"]),
            strategy=payload["strategy"],
            weights=CostWeights.from_dict(payload.get("weights", {})),
            entries={
                digest: ProfileEntry.from_dict(entry)
                for digest, entry in payload.get("entries", {}).items()
            },
            schema=int(payload.get("schema", PROFILE_SCHEMA)),
            fingerprint_schema=int(
                payload.get("fingerprint_schema", FINGERPRINT_SCHEMA)
            ),
        )

    @classmethod
    def load(cls, path: str) -> "TunedProfile":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json_dict(json.load(handle))


def group_by_fingerprint(
    patterns: Sequence[str],
) -> Dict[str, List[str]]:
    """Bucket a pattern set by fingerprint digest (sorted, stable)."""
    groups: Dict[str, List[str]] = {}
    for pattern in patterns:
        digest = fingerprint_pattern(pattern).digest
        groups.setdefault(digest, []).append(pattern)
    return dict(sorted(groups.items()))


def tune_patterns(
    suite: str,
    patterns: Sequence[str],
    *,
    seed: int = 2025,
    strategy: str = "hill",
    max_evals: int = 48,
    seconds: Optional[float] = None,
    weights: CostWeights = DEFAULT_WEIGHTS,
    probe_text: Optional[bytes] = None,
    tracer=None,
    metrics=None,
) -> "TunedProfileRun":
    """Tune every fingerprint group of ``patterns`` into one profile.

    Per-group seeds derive deterministically from the run seed and the
    group's position in digest order, so the profile is bit-identical
    across runs regardless of dict iteration quirks.  A ``seconds``
    bound is split evenly across groups (checked between evaluations).
    """
    groups = group_by_fingerprint(patterns)
    per_group_seconds = (
        seconds / len(groups) if seconds is not None and groups else None
    )
    profile = TunedProfile(
        suite=suite, seed=seed, strategy=strategy, weights=weights
    )
    results: Dict[str, TuningResult] = {}
    for index, (digest, group) in enumerate(groups.items()):
        result = tune(
            group,
            seed=seed + 7919 * index,
            strategy=strategy,
            max_evals=max_evals,
            seconds=per_group_seconds,
            weights=weights,
            probe_text=probe_text,
            tracer=tracer,
            metrics=metrics,
        )
        results[digest] = result
        profile.entries[digest] = ProfileEntry(
            fingerprint=digest,
            spec=result.best_spec,
            cost=result.best_cost,
            default_cost=result.default_cost,
            patterns=len(group),
            evaluations=result.evaluations,
        )
    return TunedProfileRun(profile=profile, results=results, groups=groups)


@dataclass
class TunedProfileRun:
    """A profile plus the per-group search details behind it."""

    profile: TunedProfile
    results: Dict[str, TuningResult]
    groups: Dict[str, List[str]]


def evaluate_profile(
    profile: TunedProfile,
    groups: Dict[str, List[str]],
    probe_text: Optional[bytes] = None,
    budget: Optional[Budget] = None,
) -> Dict[str, CostBreakdown]:
    """Re-score a profile's pipelines on a (possibly newer) pattern set.

    The nightly re-tune compares this against a fresh search: a
    checked-in profile whose pipelines regressed past tolerance has
    gone stale (pass semantics drifted) and must be re-shipped.
    """
    model = CostModel(
        weights=profile.weights, probe_text=probe_text, budget=budget
    )
    scores: Dict[str, CostBreakdown] = {}
    for digest, patterns in groups.items():
        entry = profile.entries.get(digest)
        spec = entry.spec if entry is not None else PipelineSpec()
        scores[digest] = model.evaluate(patterns, spec)
    return scores


class ProfileStore:
    """Fingerprint → tuned pipeline lookup over loaded profiles.

    Lookups are counted under
    ``repro_tuner_profile_lookups_total{outcome}``: ``hit`` (a tuned
    pipeline served), ``miss`` (no profile covers the fingerprint, the
    default pipeline runs) and ``error`` (the pattern did not parse —
    resolution falls back and leaves the rejection to the compiler
    proper, which reports it with full location info).
    """

    def __init__(
        self,
        paths: Optional[Sequence[str]] = None,
        metrics: Optional[AnyMetrics] = None,
    ):
        registry = as_metrics(metrics)
        self._hit = registry.counter(
            "repro_tuner_profile_lookups_total",
            labels={"outcome": "hit"},
            help_text="auto-pipeline lookups resolved from a tuned profile",
        )
        self._miss = registry.counter(
            "repro_tuner_profile_lookups_total",
            labels={"outcome": "miss"},
            help_text="auto-pipeline lookups falling back to the default",
        )
        self._error = registry.counter(
            "repro_tuner_profile_lookups_total",
            labels={"outcome": "error"},
            help_text="auto-pipeline lookups on unparseable patterns",
        )
        self.profiles: List[TunedProfile] = []
        self._by_digest: Dict[str, PipelineSpec] = {}
        if paths is None:
            paths = discover_profiles(PROFILES_DIR)
        for path in paths:
            self.add_profile(TunedProfile.load(path))

    def add_profile(self, profile: TunedProfile) -> None:
        if profile.fingerprint_schema != FINGERPRINT_SCHEMA:
            # A profile keyed by an older fingerprint scheme can never
            # match a current digest; skip it rather than mis-serve.
            return
        self.profiles.append(profile)
        for digest, entry in profile.entries.items():
            # First profile to claim a digest wins (load order is the
            # sorted file list, so this is deterministic).
            self._by_digest.setdefault(digest, entry.spec)

    def lookup(
        self, fingerprint: PatternFingerprint
    ) -> Optional[PipelineSpec]:
        spec = self._by_digest.get(fingerprint.digest)
        if spec is not None:
            self._hit.inc()
        else:
            self._miss.inc()
        return spec

    def resolve_options(
        self,
        pattern: str,
        options: Optional[CompileOptions] = None,
        budget: Optional[Budget] = None,
    ) -> CompileOptions:
        """Options for ``compile_pattern(optimize="auto")``.

        Fingerprint hit → the tuned pipeline injected into the options;
        miss or unparseable pattern → the options unchanged (default
        pipeline).
        """
        from dataclasses import replace

        base = options if options is not None else CompileOptions()
        try:
            fingerprint = fingerprint_pattern(pattern, budget=budget)
        except Exception:
            self._error.inc()
            return base
        spec = self.lookup(fingerprint)
        if spec is None:
            return base
        return replace(
            base,
            regex_pipeline=spec.regex_passes,
            cicero_pipeline=spec.cicero_passes,
        )


def discover_profiles(directory: str) -> List[str]:
    """Sorted ``*.json`` paths under a profile directory (may be empty)."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".json")
    )


_default_store: Optional[ProfileStore] = None
_store_lock = threading.Lock()


def default_store() -> ProfileStore:
    """The lazily-built process-wide store over the shipped profiles."""
    global _default_store
    with _store_lock:
        if _default_store is None:
            _default_store = ProfileStore()
        return _default_store


def reset_default_store() -> None:
    """Drop the cached store (tests that swap profile sets)."""
    global _default_store
    with _store_lock:
        _default_store = None


__all__ = [
    "PROFILES_DIR",
    "PROFILE_SCHEMA",
    "ProfileEntry",
    "ProfileStore",
    "TunedProfile",
    "TunedProfileRun",
    "default_store",
    "discover_profiles",
    "evaluate_profile",
    "group_by_fingerprint",
    "reset_default_store",
    "tune_patterns",
]
