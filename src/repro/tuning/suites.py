"""Canonical tuning suites: one fixed pattern set + probe input each.

The tuner, the ``tuned_vs_default`` bench section, the tuner-smoke CI
job and the nightly re-tune all evaluate cost on *exactly* these sets —
sharing one definition is what makes the shipped profiles' "tuned cost
≤ default cost" guarantee transfer from the search that produced them
to every consumer that gates on them.

The three suites mirror the paper's workloads (§6): ``protomata``
(PROSITE-style motifs), ``brill`` (tagging rules) and ``alternation``
(the ×4-alternated variants stressing wide alternations, half
Protomata4 / half Brill4).
"""

from __future__ import annotations

from typing import Dict, List

from ..workloads.suite import load_benchmark
from .cost import MAX_PROBE_BYTES

TUNER_SUITES = ("protomata", "brill", "alternation")

#: Fixed scale of the canonical sets — small enough that one cost
#: evaluation stays in the tens of milliseconds, large enough that a
#: pipeline ordering win on the set generalizes across the generator's
#: seed space (the suites are structurally homogeneous by design).
SUITE_NUM_RES = 6
SUITE_SEED = 2025


def suite_patterns(name: str) -> List[str]:
    """The canonical pattern set of one tuner suite."""
    if name == "protomata":
        return load_benchmark(
            "protomata", num_res=SUITE_NUM_RES, num_chunks=1, seed=SUITE_SEED
        ).patterns
    if name == "brill":
        return load_benchmark(
            "brill", num_res=SUITE_NUM_RES, num_chunks=1, seed=SUITE_SEED
        ).patterns
    if name == "alternation":
        half = max(SUITE_NUM_RES // 2, 1)
        return (
            load_benchmark(
                "protomata4", num_res=half, num_chunks=1, seed=SUITE_SEED
            ).patterns
            + load_benchmark(
                "brill4", num_res=half, num_chunks=1, seed=SUITE_SEED
            ).patterns
        )
    raise ValueError(
        f"unknown tuner suite {name!r}; expected one of {TUNER_SUITES}"
    )


def suite_probe_text(name: str) -> bytes:
    """Deterministic probe input feeding the simulated-cycles term."""
    source = "protomata4" if name == "alternation" else name
    benchmark = load_benchmark(
        source, num_res=SUITE_NUM_RES, num_chunks=1, seed=SUITE_SEED
    )
    return benchmark.chunks[0][:MAX_PROBE_BYTES]


def all_suites() -> Dict[str, List[str]]:
    return {name: suite_patterns(name) for name in TUNER_SUITES}


__all__ = [
    "SUITE_NUM_RES",
    "SUITE_SEED",
    "TUNER_SUITES",
    "all_suites",
    "suite_patterns",
    "suite_probe_text",
]
