"""Minimal HTTP/1.1 over asyncio streams — zero dependencies.

The service speaks just enough HTTP for its JSON endpoints and the
chunk-at-a-time ``/stream`` body: request line + headers bounded in
size and read under a slow-loris deadline, bodies by ``Content-Length``
or ``chunked`` transfer coding, keep-alive by default.  This is *not*
a general server — it is the narrow, testable waist the chaos suite
beats on (oversized heads, trickled bytes, half-closed sockets all
settle with one well-formed response or a clean close, never a hang).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

#: Bound on the request head (request line + headers).  Oversized heads
#: are a classic memory-DoS vector; 16 KiB fits every legitimate client.
MAX_HEAD_BYTES = 16 * 1024

STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpProtocolError(Exception):
    """Malformed or over-limit request; carries the status to answer."""

    def __init__(self, status: int, detail: str):
        self.status = status
        self.detail = detail
        super().__init__(detail)


@dataclass
class Request:
    """One parsed request head plus a handle to read its body."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    reader: asyncio.StreamReader
    body_timeout: Optional[float] = None
    max_body_bytes: int = 64 * 1024 * 1024
    _body: Optional[bytes] = field(default=None, repr=False)
    _consumed: bool = field(default=False, repr=False)

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if connection == "close":
            return False
        return True  # HTTP/1.1 default

    def content_length(self) -> Optional[int]:
        raw = self.headers.get("content-length")
        if raw is None:
            return None
        try:
            length = int(raw)
        except ValueError:
            raise HttpProtocolError(400, f"bad Content-Length {raw!r}")
        if length < 0:
            raise HttpProtocolError(400, f"bad Content-Length {raw!r}")
        return length

    @property
    def chunked(self) -> bool:
        coding = self.headers.get("transfer-encoding", "").lower()
        return "chunked" in coding

    async def _read_exactly(self, count: int) -> bytes:
        try:
            return await asyncio.wait_for(
                self.reader.readexactly(count), self.body_timeout
            )
        except asyncio.IncompleteReadError:
            raise HttpProtocolError(400, "connection closed mid-body")
        except asyncio.TimeoutError:
            raise HttpProtocolError(408, "timed out reading request body")

    async def _read_line(self) -> bytes:
        try:
            line = await asyncio.wait_for(
                self.reader.readline(), self.body_timeout
            )
        except asyncio.TimeoutError:
            raise HttpProtocolError(408, "timed out reading request body")
        if not line.endswith(b"\n"):
            raise HttpProtocolError(400, "connection closed mid-body")
        return line

    async def iter_body(
        self, chunk_bytes: int = 64 * 1024
    ) -> AsyncIterator[bytes]:
        """Yield body chunks as they arrive (the ``/stream`` feed).

        Honors ``Content-Length`` or ``chunked`` transfer coding; total
        size is bounded by ``max_body_bytes`` (413 past it).  Chunks
        are yielded as read, so a matcher downstream sees data with
        exactly the chunk boundaries the network produced.
        """
        self._consumed = True
        total = 0
        if self.chunked:
            while True:
                size_line = await self._read_line()
                try:
                    size = int(size_line.split(b";", 1)[0].strip(), 16)
                except ValueError:
                    raise HttpProtocolError(400, "bad chunk size")
                if size < 0:
                    raise HttpProtocolError(400, "bad chunk size")
                if size == 0:
                    await self._read_line()  # trailing CRLF (no trailers)
                    return
                total += size
                if total > self.max_body_bytes:
                    raise HttpProtocolError(413, "request body too large")
                remaining = size
                while remaining:
                    piece = await self._read_exactly(
                        min(remaining, chunk_bytes)
                    )
                    remaining -= len(piece)
                    yield piece
                await self._read_exactly(2)  # chunk CRLF
            return
        length = self.content_length()
        if length is None or length == 0:
            return
        if length > self.max_body_bytes:
            raise HttpProtocolError(413, "request body too large")
        remaining = length
        while remaining:
            piece = await self._read_exactly(min(remaining, chunk_bytes))
            remaining -= len(piece)
            yield piece

    async def body(self) -> bytes:
        """The whole body (cached; JSON endpoints use this)."""
        if self._body is None:
            parts = []
            async for piece in self.iter_body():
                parts.append(piece)
            self._body = b"".join(parts)
        return self._body

    async def drain_body(self) -> None:
        """Consume an unread body so keep-alive framing stays aligned."""
        if self._consumed:
            return
        async for _ in self.iter_body():
            pass


async def read_request(
    reader: asyncio.StreamReader,
    *,
    head_timeout: Optional[float] = None,
    idle_timeout: Optional[float] = None,
    body_timeout: Optional[float] = None,
    max_body_bytes: int = 64 * 1024 * 1024,
) -> Optional[Request]:
    """Parse one request head; ``None`` on clean connection close.

    ``idle_timeout`` bounds the wait for the *first* byte (keep-alive
    idling); ``head_timeout`` bounds the read of the rest of the head
    — a slow-loris client trickling header bytes gets a 408, not a
    held socket.
    """
    try:
        first = await asyncio.wait_for(reader.readline(), idle_timeout)
    except asyncio.TimeoutError:
        return None  # idle keep-alive connection: just close it
    if not first:
        return None
    if not first.endswith(b"\n"):
        if len(first) >= MAX_HEAD_BYTES:
            raise HttpProtocolError(400, "request line too long")
        return None  # closed mid-line

    async def _head_line() -> bytes:
        try:
            line = await asyncio.wait_for(reader.readline(), head_timeout)
        except asyncio.TimeoutError:
            raise HttpProtocolError(408, "timed out reading request head")
        if not line.endswith(b"\n"):
            raise HttpProtocolError(400, "connection closed mid-head")
        return line

    try:
        method, target, version = first.decode("latin-1").split()
    except ValueError:
        raise HttpProtocolError(400, f"bad request line {first!r}")
    if not version.startswith("HTTP/1."):
        raise HttpProtocolError(400, f"unsupported version {version!r}")

    headers: Dict[str, str] = {}
    head_bytes = len(first)
    while True:
        line = await _head_line()
        head_bytes += len(line)
        if head_bytes > MAX_HEAD_BYTES:
            raise HttpProtocolError(400, "request head too large")
        if line in (b"\r\n", b"\n"):
            break
        try:
            name, value = line.decode("latin-1").split(":", 1)
        except ValueError:
            raise HttpProtocolError(400, f"bad header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query, keep_blank_values=True))
    return Request(
        method=method.upper(),
        path=parts.path,
        query=query,
        headers=headers,
        reader=reader,
        body_timeout=body_timeout,
        max_body_bytes=max_body_bytes,
    )


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: Tuple[Tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> bytes:
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
    return head + body


__all__ = [
    "MAX_HEAD_BYTES",
    "HttpProtocolError",
    "Request",
    "read_request",
    "render_response",
]
