"""Per-tenant pattern namespaces over the shared compiled cache.

Tenancy here is a *naming* layer, not an isolation layer: each tenant
maps its own rule names to pattern strings, while every compiled
artifact lives in the engine's process-wide LRU
:class:`~repro.engine.PatternCache` keyed by the pattern text itself —
two tenants registering the same regex share one compilation (that is
the point of the cache, and the ISSUE's "per-tenant pattern namespaces
sharing the LRU PatternCache").  Budget-style bounds apply per tenant
so one noisy tenant cannot squat unbounded registry memory.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..runtime.errors import ReproError, UnknownPatternError


class TenantRegistry:
    """Thread-safe name → pattern mapping, namespaced by tenant."""

    DEFAULT_TENANT = "default"

    def __init__(self, max_patterns_per_tenant: int = 4096):
        self.max_patterns_per_tenant = max_patterns_per_tenant
        self._lock = threading.Lock()
        self._tenants: Dict[str, Dict[str, str]] = {}

    def register(self, tenant: Optional[str], name: str, pattern: str) -> bool:
        """Bind ``name`` to ``pattern`` for ``tenant``.

        Returns ``True`` when the binding is new or changed.  Raises
        :class:`ReproError` when the tenant's namespace is full —
        re-registering an existing name never counts against the bound.
        """
        tenant = tenant or self.DEFAULT_TENANT
        with self._lock:
            namespace = self._tenants.setdefault(tenant, {})
            existing = namespace.get(name)
            if existing is None and (
                len(namespace) >= self.max_patterns_per_tenant
            ):
                raise ReproError(
                    f"tenant {tenant!r} is at its "
                    f"{self.max_patterns_per_tenant}-pattern limit"
                )
            namespace[name] = pattern
            return existing != pattern

    def resolve(self, tenant: Optional[str], name: str) -> str:
        tenant = tenant or self.DEFAULT_TENANT
        with self._lock:
            namespace = self._tenants.get(tenant, {})
            pattern = namespace.get(name)
        if pattern is None:
            raise UnknownPatternError(
                f"tenant {tenant!r} has no pattern named {name!r}; "
                "register it via /compile first"
            )
        return pattern

    def tenants(self) -> Dict[str, int]:
        """Tenant → registered-pattern count (for /healthz)."""
        with self._lock:
            return {
                tenant: len(namespace)
                for tenant, namespace in sorted(self._tenants.items())
            }


__all__ = ["TenantRegistry", "UnknownPatternError"]
