"""Long-lived HTTP+JSON match service over :mod:`repro.engine`.

The paper's architecture targets continuous high-throughput matching;
this package is the serving front end that makes the one-shot engine
long-lived: an asyncio daemon (``repro serve``) exposing compile /
match / scan / stream endpoints with per-tenant pattern namespaces
over the shared LRU :class:`~repro.engine.PatternCache`, admission
control and load shedding wired to :class:`~repro.runtime.Budget`,
the PR 4 supervisor behind every parallel scan, true streaming match
via :class:`~repro.vm.StreamingMatcher`, and graceful SIGTERM drain
with an atomic metrics-snapshot flush.

See ``docs/service.md`` for the endpoint and backpressure contract.
"""

from .app import MatchService, serve
from .config import DEFAULT_HOST, DEFAULT_PORT, ServiceConfig
from .tenants import TenantRegistry

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "MatchService",
    "ServiceConfig",
    "TenantRegistry",
    "serve",
]
