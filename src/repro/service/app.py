"""The asyncio match service: routes, admission, drain, metrics.

Life of a request::

    accept → parse head (slow-loris bounded) → route
      health/metrics      → answer immediately, never shed
      POST endpoints      → admission gate:
         draining?        → 503 ServiceDrainingError
         inflight full?   → 429 + Retry-After, ServiceOverloadError
         admitted         → handler under the per-request deadline
                            (Budget.max_wall_seconds), CPU-bound work
                            on the executor, parallel scans behind the
                            PR 4 supervisor → exactly one JSON verdict
                            or one typed REPRO-* error

Drain (SIGTERM): stop accepting, flip ``/readyz`` to 503, give
in-flight work ``drain_seconds`` to settle, cancel the rest (each
cancelled request still writes a typed 503 before its connection
closes), flush the metrics snapshot atomically, report
``repro_service_drain_seconds``.

Every admitted or shed request increments
``repro_service_requests_total{endpoint,status}`` exactly once, at the
single point where its response bytes are written — the invariant the
chaos suite reconciles against.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Set, Tuple

from ..compiler import CompileOptions
from ..engine import Engine
from ..runtime.errors import (
    BudgetExceeded,
    ReproError,
    RequestDeadlineError,
    ServiceDrainingError,
    ServiceOverloadError,
    UnknownPatternError,
)
from ..runtime.faults import ProcessFaultPlan
from ..vm.streaming import StreamingMatcher
from .config import ServiceConfig
from .http import (
    HttpProtocolError,
    Request,
    read_request,
    render_response,
)
from .tenants import TenantRegistry

#: Endpoints exempt from admission control — probes and scrapers must
#: keep answering while the service sheds matching work.
EXEMPT_PATHS = ("/healthz", "/readyz", "/metrics")

_STATUS_BY_CODE = {
    "REPRO-SERVICE-OVERLOAD": 429,
    "REPRO-SERVICE-DRAINING": 503,
    "REPRO-SERVICE-UNKNOWN-PATTERN": 404,
    "REPRO-BUDGET-REQUEST-DEADLINE": 504,
}


def _status_for(error: ReproError) -> int:
    return _STATUS_BY_CODE.get(error.code, 422)


class MatchService:
    """One long-lived service instance (start / serve / drain)."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        metrics=None,
        log=None,
    ):
        self.config = config if config is not None else ServiceConfig()
        if metrics is None:
            from ..observability import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics
        self._log = log if log is not None else sys.stderr
        self.engine = Engine(
            backend=self.config.backend,
            options=CompileOptions(prefilter=self.config.prefilter),
            budget=self.config.budget,
            cache_size=self.config.cache_size,
            jobs=self.config.jobs,
            metrics=metrics,
        )
        self.tenants = TenantRegistry(self.config.max_patterns_per_tenant)
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, min(32, self.config.max_inflight)),
            thread_name_prefix="repro-serve",
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self.host = self.config.host
        self.port = self.config.port
        self._inflight = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._connections: Set[asyncio.Task] = set()
        self._request_tasks: Set[asyncio.Task] = set()
        # Pre-resolved instruments (the engine does the same).
        self._requests_total = lambda endpoint, status: metrics.counter(
            "repro_service_requests_total",
            labels={"endpoint": endpoint, "status": str(status)},
            help_text="service responses by endpoint and HTTP status",
        )
        self._shed_total = metrics.counter(
            "repro_service_shed_total",
            help_text="requests shed 429 at the admission gate",
        )
        self._inflight_gauge = metrics.gauge(
            "repro_service_inflight",
            help_text="admitted requests currently in flight",
        )
        self._drain_gauge = metrics.gauge(
            "repro_service_drain_seconds",
            help_text="how long the last graceful drain took",
        )
        self._stream_bytes = metrics.counter(
            "repro_service_stream_bytes_total",
            help_text="bytes fed through streaming matchers",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting (port 0 → ephemeral, see ``port``)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.host, self.port = sock.getsockname()[:2]
            break

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        return self._inflight

    async def drain(self, reason: str = "SIGTERM") -> float:
        """Graceful shutdown; returns how long it took (also gauged)."""
        started = time.monotonic()
        self._draining = True
        if self._server is not None:
            self._server.close()
        if self._inflight == 0:
            self._drained.set()
        else:
            self._drained.clear()
            try:
                await asyncio.wait_for(
                    self._drained.wait(), self.config.drain_seconds
                )
            except asyncio.TimeoutError:
                # Deadline: cancel stragglers; each writes its typed
                # 503 on the way out (see _run_admitted).
                for task in list(self._request_tasks):
                    task.cancel()
                for task in list(self._request_tasks):
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):
                        pass
        for task in list(self._connections):
            task.cancel()
        if self._server is not None:
            await self._server.wait_closed()
        self._executor.shutdown(wait=False)
        elapsed = time.monotonic() - started
        self._drain_gauge.set(elapsed)
        if self.config.stats_file:
            try:
                self.metrics.write_snapshot(
                    self.config.stats_file,
                    extra={"command": "serve", "drain_reason": reason},
                )
            except OSError as error:
                print(
                    f"warning: could not write {self.config.stats_file}: "
                    f"{error}",
                    file=self._log,
                )
        return elapsed

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            pass
        except Exception as error:  # connection-level failures stay local
            print(f"connection error: {error!r}", file=self._log)
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        config = self.config
        while True:
            try:
                request = await read_request(
                    reader,
                    head_timeout=config.header_seconds,
                    idle_timeout=config.idle_seconds,
                    body_timeout=config.header_seconds,
                    max_body_bytes=config.max_body_bytes,
                )
            except HttpProtocolError as error:
                self._write(
                    writer,
                    "protocol",
                    error.status,
                    json.dumps({"error": {"code": "HTTP", "message":
                                          error.detail}}).encode(),
                    keep_alive=False,
                )
                await writer.drain()
                return
            if request is None:
                return
            keep_alive = await self._dispatch(request, writer)
            try:
                await writer.drain()
            except ConnectionError:
                return
            if not keep_alive:
                return

    # ------------------------------------------------------------------
    # Routing + admission
    # ------------------------------------------------------------------
    def _write(
        self,
        writer: asyncio.StreamWriter,
        endpoint: str,
        status: int,
        body: bytes,
        *,
        keep_alive: bool = True,
        content_type: str = "application/json",
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        """The single response-writing point: one call, one count."""
        self._requests_total(endpoint, status).inc()
        try:
            writer.write(
                render_response(
                    status,
                    body,
                    content_type=content_type,
                    extra_headers=extra_headers,
                    keep_alive=keep_alive,
                )
            )
        except ConnectionError:
            pass

    def _error_body(self, error: ReproError) -> bytes:
        return json.dumps({"error": error.to_dict()},
                          sort_keys=True).encode()

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        endpoint = request.path
        keep_alive = request.keep_alive and not self._draining

        if endpoint in EXEMPT_PATHS:
            if request.method != "GET":
                self._write(writer, endpoint, 405,
                            b'{"error": {"message": "GET only"}}',
                            keep_alive=keep_alive)
                return keep_alive
            await request.drain_body()
            self._handle_exempt(request, writer, endpoint, keep_alive)
            return keep_alive

        if endpoint not in ("/compile", "/match", "/scan", "/stream"):
            await request.drain_body()
            self._write(writer, endpoint, 404,
                        b'{"error": {"message": "unknown endpoint"}}',
                        keep_alive=keep_alive)
            return keep_alive
        if request.method != "POST":
            await request.drain_body()
            self._write(writer, endpoint, 405,
                        b'{"error": {"message": "POST only"}}',
                        keep_alive=keep_alive)
            return keep_alive

        # --- admission gate -------------------------------------------
        if self._draining:
            error = ServiceDrainingError("rejected at admission")
            self._write(writer, endpoint, 503, self._error_body(error),
                        keep_alive=False)
            return False
        if self._inflight >= self.config.max_inflight:
            error = ServiceOverloadError(
                self._inflight,
                self.config.max_inflight,
                self.config.retry_after,
            )
            self._shed_total.inc()
            self._write(
                writer, endpoint, 429, self._error_body(error),
                keep_alive=keep_alive,
                extra_headers=(
                    ("Retry-After", f"{self.config.retry_after:g}"),
                ),
            )
            return keep_alive

        self._inflight += 1
        self._inflight_gauge.set(self._inflight)
        task = asyncio.current_task()
        if task is not None:
            self._request_tasks.add(task)
        try:
            return await self._run_admitted(request, writer, endpoint,
                                            keep_alive)
        finally:
            if task is not None:
                self._request_tasks.discard(task)
            self._inflight -= 1
            self._inflight_gauge.set(self._inflight)
            if self._draining and self._inflight == 0:
                self._drained.set()

    async def _run_admitted(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        endpoint: str,
        keep_alive: bool,
    ) -> bool:
        deadline = self.config.effective_request_seconds()
        requested = request.headers.get("x-repro-deadline")
        if requested is not None:
            try:
                deadline = min(deadline, float(requested))
            except ValueError:
                pass
        started = time.monotonic()
        try:
            status, body = await asyncio.wait_for(
                self._route(request, endpoint), deadline
            )
        except asyncio.TimeoutError:
            error = RequestDeadlineError(
                endpoint, time.monotonic() - started, deadline
            )
            self._write(writer, endpoint, 504, self._error_body(error),
                        keep_alive=False)
            return False
        except asyncio.CancelledError:
            # Drain-deadline cancellation: settle with a typed error
            # before the connection closes — never a silent drop.
            error = ServiceDrainingError("cancelled at drain deadline")
            self._write(writer, endpoint, 503, self._error_body(error),
                        keep_alive=False)
            try:
                await writer.drain()
            except (ConnectionError, asyncio.CancelledError):
                pass
            raise
        except HttpProtocolError as error:
            self._write(
                writer, endpoint, error.status,
                json.dumps({"error": {"code": "HTTP",
                                      "message": error.detail}}).encode(),
                keep_alive=False,
            )
            return False
        except ReproError as error:
            self._write(writer, endpoint, _status_for(error),
                        self._error_body(error), keep_alive=keep_alive)
            return keep_alive
        except Exception as error:  # defensive: never a hung client
            print(f"handler error on {endpoint}: {error!r}", file=self._log)
            body = json.dumps(
                {"error": {"code": "REPRO-INTERNAL",
                           "message": repr(error)}}
            ).encode()
            self._write(writer, endpoint, 500, body, keep_alive=False)
            return False
        self._write(writer, endpoint, status, body, keep_alive=keep_alive)
        return keep_alive

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _handle_exempt(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        endpoint: str,
        keep_alive: bool,
    ) -> None:
        if endpoint == "/metrics":
            text = self.metrics.render_prometheus()
            self._write(writer, endpoint, 200, text.encode(),
                        content_type="text/plain; version=0.0.4",
                        keep_alive=keep_alive)
            return
        if endpoint == "/readyz":
            status = 503 if self._draining else 200
            body = json.dumps({"ready": not self._draining}).encode()
            self._write(writer, endpoint, status, body,
                        keep_alive=keep_alive)
            return
        stats = self.engine.cache_stats()
        body = json.dumps(
            {
                "status": "draining" if self._draining else "ok",
                "inflight": self._inflight,
                "max_inflight": self.config.max_inflight,
                "backend": self.config.backend,
                "tenants": self.tenants.tenants(),
                "cache": {
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "evictions": stats.evictions,
                },
            },
            sort_keys=True,
        ).encode()
        self._write(writer, endpoint, 200, body, keep_alive=keep_alive)

    async def _json_body(self, request: Request) -> dict:
        raw = await request.body()
        if not raw:
            raise HttpProtocolError(400, "empty JSON body")
        try:
            payload = json.loads(raw)
        except ValueError:
            raise HttpProtocolError(400, "body is not valid JSON")
        if not isinstance(payload, dict):
            raise HttpProtocolError(400, "JSON body must be an object")
        return payload

    def _resolve_pattern(self, payload: dict) -> str:
        pattern = payload.get("pattern")
        if pattern is not None:
            if not isinstance(pattern, str):
                raise HttpProtocolError(422, "pattern must be a string")
            return pattern
        name = payload.get("name")
        if not isinstance(name, str):
            raise HttpProtocolError(
                422, "provide either 'pattern' or 'tenant'+'name'"
            )
        return self.tenants.resolve(payload.get("tenant"), name)

    async def _in_executor(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    async def _route(
        self, request: Request, endpoint: str
    ) -> Tuple[int, bytes]:
        if endpoint == "/stream":
            return await self._handle_stream(request)
        payload = await self._json_body(request)
        if endpoint == "/compile":
            return await self._handle_compile(payload)
        if endpoint == "/match":
            return await self._handle_match(payload)
        return await self._handle_scan(payload)

    async def _handle_compile(self, payload: dict) -> Tuple[int, bytes]:
        pattern = payload.get("pattern")
        if not isinstance(pattern, str):
            raise HttpProtocolError(422, "'pattern' (string) is required")
        # Compile (or hit) through the shared cache off-loop.
        await self._in_executor(self.engine.matcher, pattern)
        tenant = payload.get("tenant")
        name = payload.get("name")
        registered = False
        if name is not None:
            if not isinstance(name, str):
                raise HttpProtocolError(422, "'name' must be a string")
            registered = self.tenants.register(tenant, name, pattern)
        stats = self.engine.cache_stats()
        body = json.dumps(
            {
                "ok": True,
                "pattern": pattern,
                "tenant": tenant or TenantRegistry.DEFAULT_TENANT
                if name is not None
                else None,
                "name": name,
                "registered": registered,
                "cache": {"hits": stats.hits, "misses": stats.misses},
            },
            sort_keys=True,
        ).encode()
        return 200, body

    async def _handle_match(self, payload: dict) -> Tuple[int, bytes]:
        pattern = self._resolve_pattern(payload)
        text = payload.get("text")
        if not isinstance(text, str):
            raise HttpProtocolError(422, "'text' (string) is required")
        matched = await self._in_executor(self.engine.match, pattern, text)
        return 200, json.dumps({"matched": bool(matched)}).encode()

    async def _handle_scan(self, payload: dict) -> Tuple[int, bytes]:
        pattern = self._resolve_pattern(payload)
        text = payload.get("text")
        if not isinstance(text, str):
            raise HttpProtocolError(422, "'text' (string) is required")
        chunk_bytes = payload.get("chunk_bytes", 500)
        jobs = payload.get("jobs")
        partial = bool(payload.get("partial", False))
        fault_plan = None
        fault = payload.get("fault")
        if fault is not None:
            if not self.config.chaos:
                raise HttpProtocolError(
                    422, "fault injection requires --chaos"
                )
            fault_plan = ProcessFaultPlan.single(
                int(fault.get("index", 0)),
                str(fault.get("kind", "raise")),
                times=fault.get("times"),
                marker_dir=fault.get("marker_dir"),
                hang_seconds=float(fault.get("hang_seconds", 3600.0)),
            )

        def _scan():
            return self.engine.scan_corpus(
                pattern,
                text,
                chunk_bytes=int(chunk_bytes),
                jobs=jobs,
                strict=not partial,
                fault_plan=fault_plan,
            )

        result = await self._in_executor(_scan)
        response = {
            "matched": result.matched,
            "chunks": result.chunks,
            "matched_chunks": result.matched_chunks,
            "bytes": result.bytes_scanned,
        }
        if partial:
            response["complete"] = result.complete
            response["retries"] = result.retries
            response["breaker_tripped"] = result.breaker_tripped
            response["outcomes"] = [
                {
                    "index": outcome.index,
                    "status": outcome.status,
                    "verdict": outcome.verdict,
                    "error": outcome.error.to_dict()
                    if outcome.error is not None
                    else None,
                }
                for outcome in result.outcomes
                if not outcome.ok
            ]
        return 200, json.dumps(response, sort_keys=True).encode()

    async def _handle_stream(self, request: Request) -> Tuple[int, bytes]:
        headers = request.headers
        pattern = headers.get("x-repro-pattern")
        if pattern is None:
            name = headers.get("x-repro-name")
            if name is None:
                raise HttpProtocolError(
                    422,
                    "provide X-Repro-Pattern or X-Repro-Tenant/X-Repro-Name",
                )
            pattern = self.tenants.resolve(headers.get("x-repro-tenant"),
                                           name)
        use_dfa = headers.get("x-repro-dfa", "on").lower() not in (
            "off", "0", "false",
        )
        matcher = await self._in_executor(self.engine.matcher, pattern)
        vm = getattr(matcher, "vm", None)
        if vm is None:
            raise HttpProtocolError(
                422,
                f"/stream requires the cicero backend "
                f"(configured: {self.config.backend})",
            )
        streamer = StreamingMatcher(
            vm.program,
            max_steps=self.config.budget.max_vm_steps,
            use_dfa=use_dfa,
            max_dfa_states=self.config.budget.max_dfa_states,
            vm=vm,
        )
        settled = None
        fed = 0
        async for piece in request.iter_body():
            fed += len(piece)
            if settled is None:
                settled = await self._in_executor(streamer.feed, piece)
        self._stream_bytes.inc(fed)
        result = settled if settled is not None else streamer.finish()
        body = json.dumps(
            {
                "matched": result.matched,
                "position": result.position,
                "bytes": fed,
                "settled_early": settled is not None,
                "accelerated": streamer.accelerated,
                "dfa_fallbacks": streamer.dfa_fallbacks,
            },
            sort_keys=True,
        ).encode()
        return 200, body


async def _serve_async(config: ServiceConfig) -> int:
    service = MatchService(config)
    await service.start()
    print(f"repro-serve listening on {service.host}:{service.port}",
          flush=True)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    reason = {"signal": "stop"}

    def _signal(name: str) -> None:
        reason["signal"] = name
        stop.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, _signal, sig.name)
        except NotImplementedError:  # non-POSIX event loops
            pass
    await stop.wait()
    elapsed = await service.drain(reason["signal"])
    print(f"repro-serve drained in {elapsed:.3f}s", flush=True)
    return 0


def serve(config: ServiceConfig) -> int:
    """Blocking entry point for ``repro serve``; returns the exit code."""
    return asyncio.run(_serve_async(config))


__all__ = ["EXEMPT_PATHS", "MatchService", "serve"]
