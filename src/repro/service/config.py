"""Service configuration: one frozen dataclass, CLI- and test-friendly.

Every admission/backpressure knob the chaos suite exercises lives
here so a test can build a tiny service (two in-flight slots, 50 ms
deadlines) and the CLI a production one from the same type.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..runtime.budget import DEFAULT_BUDGET, Budget

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

#: Fallback per-request deadline when the budget carries no wall clock.
DEFAULT_REQUEST_SECONDS = 30.0


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`~repro.service.MatchService`.

    ``max_inflight`` bounds concurrently *admitted* requests — the
    queue the service refuses to grow past (requests over the bound
    are shed with ``429 + Retry-After: retry_after``).  Health and
    metrics endpoints are exempt so probes keep working under flood.

    ``request_seconds`` is the per-request deadline; ``None`` maps it
    to ``budget.max_wall_seconds`` (the ISSUE contract) and falls back
    to :data:`DEFAULT_REQUEST_SECONDS` when the budget is unbounded.

    ``drain_seconds`` bounds shutdown: on SIGTERM the service stops
    accepting, lets in-flight work finish for at most this long, then
    cancels the rest with typed errors.

    ``chaos`` gates the fault-injection request surface (``/scan``'s
    ``fault`` parameter) — off in production, on in the chaos suite.
    """

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    backend: str = "cicero"
    prefilter: str = "auto"
    budget: Budget = field(default_factory=lambda: DEFAULT_BUDGET)
    cache_size: int = 256
    jobs: Optional[int] = None
    max_inflight: int = 64
    retry_after: float = 1.0
    request_seconds: Optional[float] = None
    drain_seconds: float = 10.0
    header_seconds: float = 5.0
    idle_seconds: float = 60.0
    max_body_bytes: int = 64 * 1024 * 1024
    max_patterns_per_tenant: int = 4096
    stats_file: Optional[str] = None
    chaos: bool = False

    def effective_request_seconds(self) -> float:
        if self.request_seconds is not None:
            return self.request_seconds
        if self.budget.max_wall_seconds is not None:
            return self.budget.max_wall_seconds
        return DEFAULT_REQUEST_SECONDS

    def replace(self, **changes) -> "ServiceConfig":
        return replace(self, **changes)


__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_REQUEST_SECONDS",
    "ServiceConfig",
]
