"""Thread-safe LRU cache for compiled patterns.

Compilation is the expensive half of serving a match request — the
frontend → dialects → codegen pipeline costs milliseconds while a cache
probe costs microseconds — and real traffic repeats patterns heavily.
The cache is keyed by the *complete* compilation identity
``(pattern, backend, CompileOptions, Budget)`` (see
:func:`matcher_cache_key`), so two callers with different optimization
flags or budgets never share an artifact.

MLIR's own thesis (reusable compilation infrastructure behind stable
interfaces) is the design here: any matcher-producing builder can sit
behind :meth:`PatternCache.get_or_build`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

from ..arch.config import ConfigurationError
from ..compiler import CompileOptions
from ..runtime.budget import Budget, DEFAULT_BUDGET

#: Distinguishes "no entry" from any cached artifact in the probe path.
_ABSENT = object()


def matcher_cache_key(
    pattern: str,
    backend: str,
    options: Optional[CompileOptions],
    budget: Optional[Budget],
) -> tuple:
    """The full identity of one compiled matcher.

    ``None`` options/budget normalize to the defaults so explicit and
    implicit defaults hit the same entry.
    """
    effective_options = options if options is not None else CompileOptions()
    effective_budget = budget if budget is not None else DEFAULT_BUDGET
    return (
        pattern,
        backend,
        effective_options.cache_key(),
        effective_budget.cache_key(),
    )


@dataclass
class CacheStats:
    """Monotonic counters; snapshot with :meth:`PatternCache.stats`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }


class PatternCache:
    """Bounded LRU mapping cache keys to built artifacts.

    Safe for concurrent use: lookups, inserts and evictions run under
    one lock.  The *builder* runs **outside** the lock, so a slow
    compilation never blocks other threads' cache hits; two threads
    missing on the same key concurrently may both build, and the first
    insert wins (the duplicate artifact is discarded — matchers are
    value objects, so this is benign).
    """

    def __init__(self, capacity: int = 256, metrics: Any = None):
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        # Pre-resolved registry instruments (one lookup per cache, not
        # per probe); ``None`` keeps the probe path allocation-free.
        self._metric_hits = None
        self._metric_misses = None
        self._metric_evictions = None
        if metrics is not None and metrics.enabled:
            self._metric_hits = metrics.counter(
                "repro_cache_hits_total",
                help_text="pattern-cache lookups served from the LRU",
            )
            self._metric_misses = metrics.counter(
                "repro_cache_misses_total",
                help_text="pattern-cache lookups that compiled",
            )
            self._metric_evictions = metrics.counter(
                "repro_cache_evictions_total",
                help_text="pattern-cache entries dropped by LRU pressure",
            )

    def get_or_build(
        self, key: Hashable, builder: Callable[[], Any]
    ) -> Any:
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                cached = self._entries[key]
            else:
                self._misses += 1
                cached = _ABSENT
        if cached is not _ABSENT:
            if self._metric_hits is not None:
                self._metric_hits.inc()
            return cached
        if self._metric_misses is not None:
            self._metric_misses.inc()
        artifact = builder()
        evicted = 0
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # Lost the build race; keep the incumbent so every
                # caller observes one artifact per key.
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = artifact
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted and self._metric_evictions is not None:
            self._metric_evictions.inc(evicted)
        return artifact

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters survive; they are monotonic)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )


__all__ = ["CacheStats", "PatternCache", "matcher_cache_key"]
