"""The fault-tolerant scan supervisor.

:mod:`repro.engine.parallel` shards a corpus over one ``pool.map`` —
fast, but all-or-nothing: one hung text, one budget trip inside a
worker, or one OOM-killed process destroys the verdicts of every other
shard.  The paper's hardware is explicitly fault-aware at this
granularity (engine-level load balancing tolerates imbalanced FIFOs,
§5); this module is the software analogue, giving each shard the same
isolation:

* shards are dispatched as **individual futures** over an explicit
  ``multiprocessing`` context (:func:`~repro.engine.parallel.resolve_mp_context`),
  never a bare ``pool.map``;
* a **per-task timeout** (``Budget.max_task_seconds``) and an **overall
  deadline** (``Budget.max_wall_seconds``) bound every wait — a hung
  worker is reclaimed by terminating and respawning the pool;
* **dead workers are detected** (``os._exit``, OOM kill) by watching the
  pool's process table; in-flight shards are re-dispatched, and when
  several were in flight the supervisor *probes* them one at a time so
  a single poisonous input cannot take innocent shards down with it;
* failed shards are **retried** with capped exponential backoff plus
  deterministic jitter, then **quarantined** with a typed per-shard
  error instead of aborting the run;
* a **circuit breaker** stops dispatching when the settled-failure
  ratio crosses a threshold — systemic failures fail fast.

Every shard ends in exactly one :class:`ShardOutcome` with status
``ok | error | timeout | quarantined``; the safety property (proven by
the process-fault-injection suite) is that an injected worker fault is
either retried to success, quarantined with a typed error, or converted
to a typed timeout — **never a hang, never a silently dropped verdict**.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..runtime.errors import (
    CircuitBreakerOpenError,
    ReproError,
    ShardFailedError,
    ShardQuarantinedError,
    TaskTimeoutError,
    WallClockBudgetError,
    WorkerCrashError,
    WorkerStateError,
)
from ..runtime.faults import ProcessFaultPlan
from .parallel import WorkerPayload, build_match_fn, resolve_mp_context

#: The four ways a shard can settle.
OUTCOME_STATUSES = ("ok", "error", "timeout", "quarantined")


# ----------------------------------------------------------------------
# Policies and results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How failed shards are retried before quarantine.

    A shard gets ``1 + max_retries`` tries; the delay before retry
    ``n`` is ``min(backoff_cap, backoff_base * 2**(n-1))`` stretched by
    up to ``jitter`` (uniformly random but seeded, so runs are
    reproducible).  Timeouts are terminal by default — retrying a
    deterministic hang burns ``max_task_seconds`` of wall clock per
    attempt — opt in with ``retry_timeouts``.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.5
    retry_timeouts: bool = False
    seed: int = 0

    def backoff_seconds(self, attempt: int, rng: random.Random) -> float:
        base = min(
            self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1))
        )
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class SupervisorPolicy:
    """Everything the supervisor needs beyond the budget's limits."""

    retry: RetryPolicy = RetryPolicy()
    #: Settled-failure ratio that trips the circuit breaker;
    #: ``None`` disables the breaker.
    failure_threshold: Optional[float] = 0.5
    #: Settled shards required before the breaker may trip (a 1/1
    #: failure is not a systemic signal).
    breaker_min_samples: int = 5
    #: Supervisor fallback poll granularity.  Shard completions wake the
    #: supervisor immediately (via result callbacks); this interval only
    #: bounds the detection lag for hangs, crashes and deadlines.
    poll_seconds: float = 0.005
    #: Explicit ``multiprocessing`` start method (``None`` = forkserver
    #: where available, else spawn — never the platform default).
    mp_context: Optional[str] = None


DEFAULT_POLICY = SupervisorPolicy()


@dataclass
class ShardOutcome:
    """How one shard settled: its verdict, or a typed error.

    ``vm_counters`` carries the worker-local counter deltas (e.g.
    ``repro_vm_steps_total``) attributed to this shard's successful
    attempt, when the payload asked for collection
    (:attr:`~repro.engine.parallel.WorkerPayload.collect_vm_metrics`);
    the engine merges them back into the parent registry.  Failed
    attempts drop their deltas — retried work is never double-counted.
    """

    index: int
    status: str
    verdict: Optional[bool] = None
    error: Optional[ReproError] = None
    attempts: int = 1
    vm_counters: Optional[Dict[str, float]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        payload = {
            "index": self.index,
            "status": self.status,
            "verdict": self.verdict,
            "error": None if self.error is None else self.error.to_dict(),
            "attempts": self.attempts,
        }
        # Present only when worker metrics collection was opted in, so
        # the serialized shape is unchanged for ordinary scans.
        if self.vm_counters is not None:
            payload["vm_counters"] = self.vm_counters
        return payload


@dataclass
class SupervisorResult:
    """Aggregate of one supervised run: per-shard outcomes + accounting."""

    outcomes: List[ShardOutcome] = field(default_factory=list)
    retries: int = 0
    respawns: int = 0
    elapsed: float = 0.0
    breaker_tripped: bool = False

    @property
    def verdicts(self) -> List[Optional[bool]]:
        return [outcome.verdict for outcome in self.outcomes]

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def quarantined(self) -> int:
        return sum(
            1 for outcome in self.outcomes if outcome.status == "quarantined"
        )

    def first_failure(self) -> Optional[ShardOutcome]:
        for outcome in self.outcomes:
            if not outcome.ok:
                return outcome
        return None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
# (match_fn, fault_plan, registry), installed per worker by the pool
# initializer; registry is the worker-local counter sink (or None).
_SUPERVISED_STATE: Optional[Tuple[Optional[Callable], object, object]] = None
# Cumulative counter totals already attributed to earlier shards in this
# worker, so each shard ships only its own delta.
_COUNTER_BASELINE: Dict[str, float] = {}


def _init_supervised_worker(
    payload: WorkerPayload, fault_plan: Optional[ProcessFaultPlan]
) -> None:
    global _SUPERVISED_STATE
    registry = None
    if payload.collect_vm_metrics:
        from ..observability import MetricsRegistry

        registry = MetricsRegistry()
    try:
        match_fn: Optional[Callable] = build_match_fn(payload, registry)
    except Exception:
        # A failing initializer would make the pool retry it forever;
        # leave the state poisoned and let every task report it instead.
        match_fn = None
    _SUPERVISED_STATE = (match_fn, fault_plan, registry)
    _COUNTER_BASELINE.clear()


def _counter_totals(registry) -> Dict[str, float]:
    """Counter values by family name (VM/sim counters are label-free)."""
    totals: Dict[str, float] = {}
    for instrument in registry.instruments():
        if instrument.kind == "counter":
            totals[instrument.name] = (
                totals.get(instrument.name, 0.0) + instrument.value
            )
    return totals


def _counter_delta(registry) -> Optional[Dict[str, float]]:
    """This shard's counter increments since the previous snapshot."""
    if registry is None:
        return None
    totals = _counter_totals(registry)
    delta = {
        name: value - _COUNTER_BASELINE.get(name, 0.0)
        for name, value in totals.items()
        if value - _COUNTER_BASELINE.get(name, 0.0) > 0.0
    }
    _COUNTER_BASELINE.clear()
    _COUNTER_BASELINE.update(totals)
    return delta or None


def _run_shard(task: Tuple[int, bytes]) -> Tuple[int, str, object, object]:
    """One shard, executed in a worker.  Always *returns* a tagged tuple
    — worker-side exceptions are converted to picklable typed errors, so
    the only ways a future can fail to resolve are a dead process or a
    hang, both of which the supervisor detects from outside.  The fourth
    element is the shard's worker-local counter delta (or ``None``)."""
    index, data = task
    state = _SUPERVISED_STATE
    if state is None or state[0] is None:
        return (
            index,
            "error",
            WorkerStateError(
                "supervised worker used before its initializer installed "
                "a matcher"
            ),
            None,
        )
    match_fn, fault_plan, registry = state
    try:
        if fault_plan is not None:
            fault_plan.fire(index)
        verdict = bool(match_fn(data))
        return (index, "ok", verdict, _counter_delta(registry))
    except ReproError as error:
        _counter_delta(registry)  # advance the baseline past failed work
        return (index, "error", error, None)
    except Exception as error:  # plain bugs become typed shard failures
        _counter_delta(registry)
        return (
            index,
            "error",
            ShardFailedError(index, type(error).__name__, str(error)),
            None,
        )


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
@dataclass
class _InFlight:
    result: object  # multiprocessing.pool.AsyncResult
    dispatched_at: float


def _live_pids(pool) -> set:
    workers = getattr(pool, "_pool", None) or []
    return {proc.pid for proc in workers if proc.is_alive()}


class _Supervisor:
    """One supervised run over one payload and one item list."""

    def __init__(
        self,
        payload: WorkerPayload,
        items: Sequence[bytes],
        jobs: int,
        task_timeout: Optional[float],
        wall_timeout: Optional[float],
        policy: SupervisorPolicy,
        fault_plan: Optional[ProcessFaultPlan],
        tracer=None,
    ):
        from ..observability import as_tracer

        self.tracer = as_tracer(tracer)
        self.payload = payload
        self.items = items
        self.jobs = max(1, min(jobs, len(items)))
        self.task_timeout = task_timeout
        self.wall_timeout = wall_timeout
        self.policy = policy
        self.fault_plan = fault_plan

        self.context = resolve_mp_context(policy.mp_context)
        self.rng = random.Random(policy.retry.seed)
        self.outcomes: List[Optional[ShardOutcome]] = [None] * len(items)
        self.dispatches: Dict[int, int] = {}
        self.strikes: Dict[int, int] = {}
        self.ready: deque = deque(range(len(items)))
        self.delayed: List[Tuple[float, int]] = []
        self.pending: Dict[int, _InFlight] = {}
        #: Indices being re-probed one at a time after a pool crash.
        self.probing: set = set()
        self.known_pids: set = set()
        self.retries = 0
        self.respawns = 0
        self.settled_failures = 0
        self.settled_total = 0
        self.breaker_tripped = False
        self.pool = None
        #: Set by result callbacks the moment any shard completes, so
        #: the loop blocks on this instead of a fixed-interval sleep —
        #: supervision latency is event-driven, not poll-bound.
        self.wake = threading.Event()

    # -- pool lifecycle -------------------------------------------------
    def _spawn_pool(self) -> None:
        self.pool = self.context.Pool(
            processes=self.jobs,
            initializer=_init_supervised_worker,
            initargs=(self.payload, self.fault_plan),
        )
        self.known_pids = _live_pids(self.pool)

    def _respawn_pool(self) -> None:
        self.respawns += 1
        if self.tracer.enabled:
            self.tracer.event("supervisor.respawn", respawns=self.respawns)
        self.pool.terminate()
        self.pool.join()
        self._spawn_pool()

    # -- settlement -----------------------------------------------------
    def _settle(self, index: int, outcome: ShardOutcome) -> None:
        if self.outcomes[index] is not None:
            return
        self.outcomes[index] = outcome
        self.probing.discard(index)
        self.settled_total += 1
        if not outcome.ok:
            self.settled_failures += 1

    def _fail(
        self, index: int, error: ReproError, *, timeout: bool = False
    ) -> None:
        """One definitive failed attempt on ``index``: retry or settle."""
        self.strikes[index] = self.strikes.get(index, 0) + 1
        retry = self.policy.retry
        retryable = retry.retry_timeouts if timeout else True
        if retryable and self.strikes[index] <= retry.max_retries:
            self.retries += 1
            delay = retry.backoff_seconds(self.strikes[index], self.rng)
            if self.tracer.enabled:
                self.tracer.event(
                    "supervisor.retry",
                    shard=index,
                    attempt=self.strikes[index],
                    delay_s=delay,
                    error_code=error.code,
                )
            self.delayed.append((time.monotonic() + delay, index))
            return
        attempts = self.dispatches.get(index, 1)
        if timeout:
            if self.tracer.enabled:
                self.tracer.event(
                    "supervisor.timeout", shard=index, attempts=attempts
                )
            self._settle(
                index,
                ShardOutcome(index, "timeout", error=error, attempts=attempts),
            )
        else:
            if self.tracer.enabled:
                self.tracer.event(
                    "supervisor.quarantine",
                    shard=index,
                    attempts=attempts,
                    error_code=error.code,
                )
            self._settle(
                index,
                ShardOutcome(
                    index,
                    "quarantined",
                    error=ShardQuarantinedError(index, attempts, error),
                    attempts=attempts,
                ),
            )

    def _settle_remaining(self, make_error) -> None:
        for index in range(len(self.items)):
            if self.outcomes[index] is None:
                error = make_error(index)
                status = (
                    "timeout"
                    if isinstance(error, WallClockBudgetError)
                    else "error"
                )
                self._settle(
                    index,
                    ShardOutcome(
                        index,
                        status,
                        error=error,
                        attempts=self.dispatches.get(index, 0),
                    ),
                )

    # -- loop phases ----------------------------------------------------
    def _collect_finished(self) -> bool:
        progressed = False
        for index, flight in list(self.pending.items()):
            if not flight.result.ready():
                continue
            del self.pending[index]
            progressed = True
            try:
                _, tag, value, counters = flight.result.get()
            except Exception as error:  # result transport failed
                self._fail(
                    index,
                    ShardFailedError(index, type(error).__name__, str(error)),
                )
                continue
            if tag == "ok":
                self._settle(
                    index,
                    ShardOutcome(
                        index,
                        "ok",
                        verdict=value,
                        attempts=self.dispatches.get(index, 1),
                        vm_counters=counters,
                    ),
                )
            else:
                self._fail(index, value)
        return progressed

    def _check_crashes(self) -> bool:
        live = _live_pids(self.pool)
        died = self.known_pids - live
        self.known_pids = self.known_pids | live
        if not died or not self.pending:
            if died:
                # Workers died with nothing in flight (e.g. during
                # initializer); refresh the baseline and move on.
                self.known_pids = live
            return False
        in_flight = sorted(self.pending)
        self._respawn_pool()
        self.pending.clear()
        if len(in_flight) == 1:
            # Exactly one suspect: it is definitively the crasher.
            self._fail(in_flight[0], WorkerCrashError(in_flight[0]))
        else:
            # Ambiguous: probe the suspects one at a time so the poison
            # shard cannot strike out innocent neighbours.
            self.probing.update(in_flight)
            for index in reversed(in_flight):
                self.ready.appendleft(index)
        return True

    def _check_task_timeouts(self, now: float) -> bool:
        if self.task_timeout is None or not self.pending:
            return False
        expired = [
            (index, flight)
            for index, flight in self.pending.items()
            if now - flight.dispatched_at > self.task_timeout
        ]
        if not expired:
            return False
        # A hung worker cannot be interrupted in place: reclaim the whole
        # pool, then requeue the innocent in-flight shards uncounted.
        innocents = [
            index
            for index in sorted(self.pending)
            if index not in {index for index, _ in expired}
        ]
        self._respawn_pool()
        self.pending.clear()
        for index, flight in expired:
            self._fail(
                index,
                TaskTimeoutError(
                    index, now - flight.dispatched_at, self.task_timeout
                ),
                timeout=True,
            )
        for index in reversed(innocents):
            self.ready.appendleft(index)
        return True

    def _promote_delayed(self, now: float) -> None:
        due = [entry for entry in self.delayed if entry[0] <= now]
        if due:
            self.delayed = [entry for entry in self.delayed if entry[0] > now]
            for _, index in sorted(due):
                self.ready.append(index)

    def _dispatch(self, now: float) -> bool:
        # While probing crash suspects the window narrows to one shard,
        # so a repeat crash unambiguously identifies the poison input.
        window = 1 if self.probing else self.jobs * 2
        progressed = False
        while self.ready and len(self.pending) < window:
            if self.probing:
                # Probe suspects before fresh work.
                index = None
                for candidate in self.ready:
                    if candidate in self.probing:
                        index = candidate
                        break
                if index is None:
                    index = self.ready[0]
                self.ready.remove(index)
            else:
                index = self.ready.popleft()
            if self.outcomes[index] is not None:
                continue
            self.dispatches[index] = self.dispatches.get(index, 0) + 1
            self.pending[index] = _InFlight(
                self.pool.apply_async(
                    _run_shard,
                    ((index, self.items[index]),),
                    callback=self._on_result,
                    error_callback=self._on_result,
                ),
                now,
            )
            progressed = True
        return progressed

    def _on_result(self, _result) -> None:
        # Runs on the pool's result-handler thread; Event.set is the
        # only safe thing to do here.  Stale callbacks from a pool that
        # was respawned since are harmless — one spurious wake-up.
        self.wake.set()

    def _breaker_should_trip(self) -> bool:
        threshold = self.policy.failure_threshold
        if threshold is None or self.breaker_tripped:
            return False
        if self.settled_total < self.policy.breaker_min_samples:
            return False
        return self.settled_failures / self.settled_total > threshold

    # -- main -----------------------------------------------------------
    def run(self) -> SupervisorResult:
        if self.tracer.enabled:
            with self.tracer.span(
                "supervisor.run", shards=len(self.items), jobs=self.jobs
            ) as span:
                result = self._run()
                span.set(
                    retries=result.retries,
                    respawns=result.respawns,
                    failed=result.failed,
                    quarantined=result.quarantined,
                    breaker_tripped=result.breaker_tripped,
                )
                return result
        return self._run()

    def _run(self) -> SupervisorResult:
        started = time.monotonic()
        deadline = (
            started + self.wall_timeout
            if self.wall_timeout is not None
            else None
        )
        self._spawn_pool()
        try:
            while any(outcome is None for outcome in self.outcomes):
                now = time.monotonic()
                if deadline is not None and now > deadline:
                    elapsed = now - started
                    self._settle_remaining(
                        lambda index: WallClockBudgetError(
                            index, elapsed, self.wall_timeout
                        )
                    )
                    break
                progressed = self._collect_finished()
                progressed |= self._check_crashes()
                progressed |= self._check_task_timeouts(time.monotonic())
                if self._breaker_should_trip():
                    self.breaker_tripped = True
                    failures, settled = self.settled_failures, self.settled_total
                    if self.tracer.enabled:
                        self.tracer.event(
                            "supervisor.breaker_open",
                            failures=failures,
                            settled=settled,
                        )
                    self._settle_remaining(
                        lambda index: CircuitBreakerOpenError(
                            failures, settled, self.policy.failure_threshold
                        )
                    )
                    break
                self._promote_delayed(time.monotonic())
                progressed |= self._dispatch(time.monotonic())
                if not progressed:
                    # Wake immediately on any shard completion; the
                    # timeout keeps hang/crash/deadline detection live.
                    self.wake.wait(self.policy.poll_seconds)
                    self.wake.clear()
        finally:
            # terminate (not close): hung or sleeping workers must die
            # with the run, never outlive it.
            self.pool.terminate()
            self.pool.join()
        return SupervisorResult(
            outcomes=list(self.outcomes),
            retries=self.retries,
            respawns=self.respawns,
            elapsed=time.monotonic() - started,
            breaker_tripped=self.breaker_tripped,
        )


def supervised_matches(
    payload: WorkerPayload,
    items: Sequence[bytes],
    jobs: int,
    task_timeout: Optional[float] = None,
    wall_timeout: Optional[float] = None,
    policy: SupervisorPolicy = DEFAULT_POLICY,
    fault_plan: Optional[ProcessFaultPlan] = None,
    tracer=None,
) -> SupervisorResult:
    """Match every item under supervision; every item gets an outcome.

    The fault-tolerant counterpart of
    :func:`~repro.engine.parallel.parallel_matches`: same payload, same
    worker-side matcher rebuild, but per-shard futures with timeouts,
    crash recovery, retries, quarantine and a circuit breaker.
    ``fault_plan`` is the test hook injecting worker-process faults
    (:class:`~repro.runtime.faults.ProcessFaultPlan`).  ``tracer``
    records a ``supervisor.run`` span carrying retry / timeout /
    quarantine / respawn / circuit-breaker events.
    """
    if not items:
        return SupervisorResult()
    supervisor = _Supervisor(
        payload,
        items,
        jobs,
        task_timeout,
        wall_timeout,
        policy,
        fault_plan,
        tracer=tracer,
    )
    return supervisor.run()


def run_in_process(
    match_fn: Callable[[bytes], bool],
    items: Sequence[bytes],
) -> SupervisorResult:
    """The in-process analogue of :func:`supervised_matches`.

    Used when the shard count cannot pay for a pool; takes the
    ready-built ``match_fn`` (the engine's cache entry holds one) so the
    serial fast path stays free of matcher-rebuild cost.  Worker-process
    failure modes (crashes, hangs) do not exist here, so the outcome
    taxonomy collapses to ``ok`` | ``error`` — but typed per-item errors
    are still isolated instead of aborting the batch.
    """
    result = SupervisorResult()
    for index, data in enumerate(items):
        try:
            result.outcomes.append(
                ShardOutcome(index, "ok", verdict=bool(match_fn(data)))
            )
        except ReproError as error:
            result.outcomes.append(ShardOutcome(index, "error", error=error))
    return result


__all__ = [
    "DEFAULT_POLICY",
    "OUTCOME_STATUSES",
    "RetryPolicy",
    "ShardOutcome",
    "SupervisorPolicy",
    "SupervisorResult",
    "run_in_process",
    "supervised_matches",
]
