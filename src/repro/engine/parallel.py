"""Corpus sharding across a ``multiprocessing`` pool.

The paper's hardware scales by replicating enumeration cores over input
chunks; the software analogue is sharding a corpus over worker
processes.  Workers never receive live matcher objects — they receive a
:class:`WorkerPayload` holding the *compiled artifact* (the Cicero
:class:`~repro.isa.program.Program`, an NFA, or a DFA table — all
plain picklable dataclasses) plus the budget limits to honor, and
rebuild the matcher once per worker in the pool initializer.  Each text
then costs one pickled ``bytes`` in and one ``bool`` out.

Parent-side input normalization happens *before* the fan-out, so typed
:class:`~repro.runtime.errors.InputEncodingError` rejections surface in
the calling process, never as opaque worker crashes.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..arch.config import ArchConfig
from ..arch.system import CiceroSystem
from ..isa.program import Program
from ..vm.thompson import ThompsonVM

#: Below this many shardable items a pool costs more than it saves.
MIN_PARALLEL_ITEMS = 2


@dataclass(frozen=True)
class WorkerPayload:
    """Everything a worker needs to rebuild one matcher.

    ``artifact`` is the backend-specific compiled object; only the
    Cicero flavours carry a :class:`Program` (``nfa``/``dfa`` ship their
    automata directly).  ``max_vm_steps`` is the
    :class:`~repro.runtime.budget.Budget` limit the rebuilt VM enforces
    per text.
    """

    backend: str
    artifact: object
    max_vm_steps: Optional[int] = None
    config: Optional[ArchConfig] = None


def build_match_fn(payload: WorkerPayload) -> Callable[[bytes], bool]:
    """Rebuild the matcher a payload describes; returns ``bytes → bool``."""
    backend = payload.backend
    if backend == "cicero":
        vm = ThompsonVM(payload.artifact)
        max_steps = payload.max_vm_steps
        return lambda data: bool(vm.run(data, max_steps=max_steps))
    if backend == "cicero-sim":
        config = payload.config if payload.config is not None else ArchConfig.new(16)
        system = CiceroSystem(payload.artifact, config)
        return lambda data: system.run(data).matched
    if backend in ("nfa", "dfa"):
        automaton = payload.artifact
        return lambda data: automaton.matches(data)
    raise ValueError(f"unknown backend {backend!r} in worker payload")


# Populated per worker process by the pool initializer.
_WORKER_MATCH_FN: Optional[Callable[[bytes], bool]] = None


def _init_worker(payload: WorkerPayload) -> None:
    global _WORKER_MATCH_FN
    _WORKER_MATCH_FN = build_match_fn(payload)


def _match_one(data: bytes) -> bool:
    assert _WORKER_MATCH_FN is not None, "worker used before initialization"
    return _WORKER_MATCH_FN(data)


def parallel_matches(
    payload: WorkerPayload, texts: Sequence[bytes], jobs: int
) -> List[bool]:
    """Match every text, sharded over ``jobs`` worker processes.

    Falls back to in-process execution when the shard count cannot pay
    for a pool (fewer items than :data:`MIN_PARALLEL_ITEMS` or a single
    job).  Results keep the input order.
    """
    jobs = min(jobs, len(texts))
    if jobs <= 1 or len(texts) < MIN_PARALLEL_ITEMS:
        match_fn = build_match_fn(payload)
        return [match_fn(data) for data in texts]
    chunksize = max(1, len(texts) // (jobs * 4))
    with multiprocessing.Pool(
        processes=jobs, initializer=_init_worker, initargs=(payload,)
    ) as pool:
        return pool.map(_match_one, texts, chunksize=chunksize)


__all__ = [
    "MIN_PARALLEL_ITEMS",
    "WorkerPayload",
    "build_match_fn",
    "parallel_matches",
]
