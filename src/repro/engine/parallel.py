"""Corpus sharding across a ``multiprocessing`` pool.

The paper's hardware scales by replicating enumeration cores over input
chunks; the software analogue is sharding a corpus over worker
processes.  Workers never receive live matcher objects — they receive a
:class:`WorkerPayload` holding the *compiled artifact* (the Cicero
:class:`~repro.isa.program.Program`, an NFA, or a DFA table — all
plain picklable dataclasses) plus the budget limits to honor, and
rebuild the matcher once per worker in the pool initializer.  Each text
then costs one pickled ``bytes`` in and one ``bool`` out.

Parent-side input normalization happens *before* the fan-out, so typed
:class:`~repro.runtime.errors.InputEncodingError` rejections surface in
the calling process, never as opaque worker crashes.

Pools always come from an **explicit** ``multiprocessing`` start method
(:func:`resolve_mp_context`): the platform default on Linux is ``fork``,
which deadlocks when the parent holds locks in other threads (the
engine's cache lock, a serving framework's executor...).  We default to
``forkserver`` where available and ``spawn`` elsewhere, and let callers
override via ``Engine(mp_context=...)``.

This module is the *unsupervised* fast path (one ``pool.map``, all-or-
nothing).  The fault-tolerant path — per-shard futures, timeouts,
retries, quarantine — lives in :mod:`repro.engine.supervisor` and
reuses the payload/initializer machinery defined here.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..arch.config import ArchConfig, ConfigurationError
from ..arch.system import CiceroSystem
from ..isa.program import Program
from ..runtime.errors import WorkerStateError
from ..vm.thompson import ThompsonVM

#: Below this many shardable items a pool costs more than it saves.
MIN_PARALLEL_ITEMS = 2


def resolve_mp_context(method: Optional[str] = None):
    """An explicit ``multiprocessing`` context, never the platform default.

    ``None`` picks ``forkserver`` when the platform offers it (one clean
    server process forked early, immune to fork-after-thread deadlocks)
    and ``spawn`` otherwise (always safe, portable to macOS/Windows).
    An unknown method name raises a typed
    :class:`~repro.arch.config.ConfigurationError`.
    """
    available = multiprocessing.get_all_start_methods()
    if method is None:
        method = "forkserver" if "forkserver" in available else "spawn"
    if method not in available:
        raise ConfigurationError(
            f"unknown multiprocessing start method {method!r}; "
            f"this platform offers {sorted(available)}"
        )
    return multiprocessing.get_context(method)


@dataclass(frozen=True)
class WorkerPayload:
    """Everything a worker needs to rebuild one matcher.

    ``artifact`` is the backend-specific compiled object; only the
    Cicero flavours carry a :class:`Program` (``nfa``/``dfa`` ship their
    automata directly).  ``max_vm_steps`` is the
    :class:`~repro.runtime.budget.Budget` limit the rebuilt VM enforces
    per text.
    """

    backend: str
    artifact: object
    max_vm_steps: Optional[int] = None
    config: Optional[ArchConfig] = None
    #: Ask supervised workers to record VM/simulator counters into a
    #: worker-local registry and ship per-shard deltas back with each
    #: :class:`~repro.engine.supervisor.ShardOutcome` (the engine merges
    #: them into the parent registry).  Off by default: worker hot loops
    #: stay on their uninstrumented copies.
    collect_vm_metrics: bool = False
    #: Prefilter mode for rebuilt ``cicero`` matchers (``off`` /
    #: ``literal`` / ``auto``).  The compile-time analysis itself rides
    #: on ``artifact`` (the pickled :class:`Program` carries it), so a
    #: worker applies exactly the literals the parent extracted.
    prefilter: str = "off"
    #: ``Budget.max_dfa_states`` forwarded to the worker's lazy DFA.
    max_dfa_states: Optional[int] = None


def build_match_fn(
    payload: WorkerPayload, metrics=None
) -> Callable[[bytes], bool]:
    """Rebuild the matcher a payload describes; returns ``bytes → bool``.

    ``metrics`` (a :class:`~repro.observability.MetricsRegistry`)
    instruments the rebuilt matcher's execution loop — the supervised
    worker initializer passes its worker-local registry here when the
    payload asks for counter collection.  ``None`` (the default) keeps
    every backend on its uninstrumented fast path; the ``nfa``/``dfa``
    automata have no counter hooks and ignore ``metrics``.
    """
    backend = payload.backend
    if backend == "cicero":
        max_steps = payload.max_vm_steps
        if payload.prefilter != "off":
            from ..prefilter.scanner import PrefilteredMatcher

            matcher = PrefilteredMatcher(
                payload.artifact,
                mode=payload.prefilter,
                max_dfa_states=payload.max_dfa_states,
                max_vm_steps=max_steps,
                metrics=metrics,
            )
            return lambda data: bool(matcher.match(data))
        vm = ThompsonVM(payload.artifact)
        if metrics is not None:
            return lambda data: bool(
                vm.run(data, max_steps=max_steps, metrics=metrics)
            )
        return lambda data: bool(vm.run(data, max_steps=max_steps))
    if backend == "cicero-sim":
        config = payload.config if payload.config is not None else ArchConfig.new(16)
        if metrics is not None:
            from ..arch.simulator import CiceroSimulator

            simulator = CiceroSimulator(config, metrics=metrics)
            program = payload.artifact
            return lambda data: simulator.run(program, data).matched
        system = CiceroSystem(payload.artifact, config)
        return lambda data: system.run(data).matched
    if backend in ("nfa", "dfa"):
        automaton = payload.artifact
        return lambda data: automaton.matches(data)
    raise ValueError(f"unknown backend {backend!r} in worker payload")


# Populated per worker process by the pool initializer.
_WORKER_MATCH_FN: Optional[Callable[[bytes], bool]] = None


def _init_worker(payload: WorkerPayload) -> None:
    global _WORKER_MATCH_FN
    _WORKER_MATCH_FN = build_match_fn(payload)


def _match_one(data: bytes) -> bool:
    if _WORKER_MATCH_FN is None:
        raise WorkerStateError(
            "pool worker used before its initializer installed a matcher"
        )
    return _WORKER_MATCH_FN(data)


def parallel_matches(
    payload: WorkerPayload,
    texts: Sequence[bytes],
    jobs: int,
    mp_context: Optional[str] = None,
) -> List[bool]:
    """Match every text, sharded over ``jobs`` worker processes.

    Falls back to in-process execution when the shard count cannot pay
    for a pool (fewer items than :data:`MIN_PARALLEL_ITEMS` or a single
    job).  Results keep the input order.
    """
    jobs = min(jobs, len(texts))
    if jobs <= 1 or len(texts) < MIN_PARALLEL_ITEMS:
        match_fn = build_match_fn(payload)
        return [match_fn(data) for data in texts]
    chunksize = max(1, len(texts) // (jobs * 4))
    context = resolve_mp_context(mp_context)
    with context.Pool(
        processes=jobs, initializer=_init_worker, initargs=(payload,)
    ) as pool:
        return pool.map(_match_one, texts, chunksize=chunksize)


__all__ = [
    "MIN_PARALLEL_ITEMS",
    "WorkerPayload",
    "build_match_fn",
    "parallel_matches",
    "resolve_mp_context",
]
