"""The high-throughput matching engine.

:class:`Engine` is the serving layer over the compilers, VMs and
back-ends: one object owning a compiled-pattern LRU cache and a
fan-out policy, exposing three calls —

* :meth:`Engine.match` — one pattern, one text (cache-accelerated);
* :meth:`Engine.match_many` — one pattern, many texts, optionally
  sharded over a ``multiprocessing`` pool;
* :meth:`Engine.scan_corpus` — one pattern over a large input stream,
  chunked with the paper's §6 methodology
  (:func:`~repro.arch.simulator.split_chunks`) and sharded like
  :meth:`match_many`.

Budgets thread through everywhere: compilation honors the budget's
compile-side limits (via the cache key, so differently-budgeted callers
never share artifacts), VM execution honors ``max_vm_steps`` both
in-process and inside workers, ``max_parallel_jobs`` caps the pool, and
``max_task_seconds`` / ``max_wall_seconds`` bound the supervised
parallel scan.

Parallel runs go through the **fault-tolerant scan supervisor**
(:mod:`repro.engine.supervisor`): per-shard futures with timeouts,
crash recovery, retries and quarantine.  The ``strict`` switch on
:meth:`Engine.match_many` / :meth:`Engine.scan_corpus` chooses between
re-raising the first typed per-shard error (strict, the historical
behavior) and returning a :class:`ScanReport` carrying every shard's
individual outcome (partial mode).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Union

from ..arch.config import ArchConfig, ConfigurationError
from ..arch.simulator import DEFAULT_CHUNK_BYTES, split_chunks
from ..backends import (
    BACKENDS,
    CiceroMatcher,
    CiceroSimMatcher,
    DFAMatcher,
    Matcher,
    NFAMatcher,
    compile_with_backend,
)
from ..compiler import CompileOptions
from ..runtime.budget import Budget, DEFAULT_BUDGET
from ..runtime.encoding import as_input_bytes
from ..runtime.faults import ProcessFaultPlan
from .cache import CacheStats, PatternCache
from .parallel import WorkerPayload, build_match_fn, resolve_mp_context
from .supervisor import (
    DEFAULT_POLICY,
    ShardOutcome,
    SupervisorPolicy,
    run_in_process,
    supervised_matches,
)

DEFAULT_CACHE_SIZE = 256

#: Input types every matching entry point normalizes to ``bytes``.
TextLike = Union[str, bytes, bytearray, memoryview]


def resolve_jobs(jobs: Optional[int], budget: Budget) -> int:
    """Turn a user-facing job count into an effective worker count.

    ``None``/``1`` mean in-process; ``0`` means "all cores"; anything
    else is taken literally — then the budget's ``max_parallel_jobs``
    caps the result.
    """
    if jobs is not None and jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    effective = budget.effective_jobs(jobs)
    return effective if effective is not None else 1


@dataclass
class CorpusScanResult:
    """Outcome of one :meth:`Engine.scan_corpus` call."""

    matched: bool
    chunk_matches: List[Optional[bool]] = field(default_factory=list)
    bytes_scanned: int = 0
    chunk_bytes: int = DEFAULT_CHUNK_BYTES

    @property
    def chunks(self) -> int:
        return len(self.chunk_matches)

    @property
    def matched_chunks(self) -> int:
        return sum(1 for match in self.chunk_matches if match)

    def __bool__(self) -> bool:
        return self.matched


@dataclass
class ScanReport(CorpusScanResult):
    """A :class:`CorpusScanResult` that survives shard failures.

    Partial mode (``strict=False``) returns one of these instead of
    raising: every shard settles in exactly one :class:`ShardOutcome`
    (``ok | error | timeout | quarantined``), ``chunk_matches`` holds
    ``None`` at failed indices, and the supervision accounting (retry
    count, pool respawns, elapsed wall time, circuit-breaker state) is
    attached for observability.
    """

    outcomes: List[ShardOutcome] = field(default_factory=list)
    retries: int = 0
    respawns: int = 0
    elapsed: float = 0.0
    breaker_tripped: bool = False

    @property
    def failed_chunks(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def quarantined(self) -> int:
        return sum(
            1 for outcome in self.outcomes if outcome.status == "quarantined"
        )

    @property
    def complete(self) -> bool:
        """Did every shard produce a verdict?"""
        return self.failed_chunks == 0

    def errors(self) -> List[ShardOutcome]:
        """The failed outcomes, in shard order."""
        return [outcome for outcome in self.outcomes if not outcome.ok]


class Engine:
    """Cached, budget-aware, optionally parallel matching front door."""

    def __init__(
        self,
        backend: str = "cicero",
        options: Optional[CompileOptions] = None,
        budget: Optional[Budget] = None,
        config: Optional[ArchConfig] = None,
        max_dfa_states: Optional[int] = 50_000,
        cache_size: int = DEFAULT_CACHE_SIZE,
        jobs: Optional[int] = None,
        mp_context: Optional[str] = None,
        supervisor: Optional[SupervisorPolicy] = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; available: {sorted(BACKENDS)}"
            )
        self.backend = backend
        self.options = options if options is not None else CompileOptions()
        self.budget = budget if budget is not None else DEFAULT_BUDGET
        self.config = config
        self.max_dfa_states = max_dfa_states
        self.jobs = jobs
        # Validate eagerly: a typo'd start method should fail at
        # construction, not inside the first parallel scan.
        resolve_mp_context(mp_context)
        self.mp_context = mp_context
        policy = supervisor if supervisor is not None else DEFAULT_POLICY
        if policy.mp_context != mp_context and mp_context is not None:
            policy = replace(policy, mp_context=mp_context)
        self.supervisor = policy
        self._cache = PatternCache(cache_size)
        # The options/budget halves of every cache key are fixed for the
        # engine's lifetime; computing them once keeps the per-request
        # cache-hit cost at a tuple construction plus a dict probe.
        self._options_key = self.options.cache_key()
        self._budget_key = self.budget.cache_key()

    # ------------------------------------------------------------------
    # Compilation (cached)
    # ------------------------------------------------------------------
    def matcher(self, pattern: str, backend: Optional[str] = None) -> Matcher:
        """The compiled matcher for ``pattern`` — cached across calls."""
        return self._entry(pattern, backend).matcher

    def _entry(
        self, pattern: str, backend: Optional[str] = None
    ) -> "_CacheEntry":
        backend = backend if backend is not None else self.backend
        key = (pattern, backend, self._options_key, self._budget_key)
        return self._cache.get_or_build(
            key, lambda: self._build_entry(pattern, backend)
        )

    def _build_entry(self, pattern: str, backend: str) -> "_CacheEntry":
        options = self.options
        if options.budget is None:
            options = replace(options, budget=self.budget)
        matcher = compile_with_backend(
            pattern,
            backend,
            options=options,
            config=self.config,
            max_dfa_states=self.max_dfa_states,
        )
        payload = self._payload(matcher)
        return _CacheEntry(matcher, payload, build_match_fn(payload))

    def cache_stats(self) -> CacheStats:
        return self._cache.stats()

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, pattern: str, text: TextLike) -> bool:
        """One text through the cached matcher (budgeted VM steps)."""
        data = as_input_bytes(text, what="input text")
        return self._entry(pattern).match_fn(data)

    def match_many(
        self,
        pattern: str,
        texts: Sequence[TextLike],
        jobs: Optional[int] = None,
        strict: bool = True,
        fault_plan: Optional[ProcessFaultPlan] = None,
    ) -> Union[List[bool], ScanReport]:
        """Every text's verdict, in input order.

        With ``jobs > 1`` the texts are sharded over a supervised worker
        pool; the pattern is compiled **once** in the calling process
        and workers rebuild their matcher from the pickled program, so
        compilation cost does not multiply with the pool size.

        ``strict=True`` (default) returns a plain verdict list and
        re-raises the first typed per-shard error.  ``strict=False``
        returns a :class:`ScanReport`: healthy shards keep their
        verdicts, failed shards carry a typed
        :class:`~repro.engine.supervisor.ShardOutcome` instead of
        poisoning the batch.  ``fault_plan`` is the fault-injection test
        hook (:class:`~repro.runtime.faults.ProcessFaultPlan`).
        """
        report = self._scan(pattern, texts, jobs, fault_plan)
        if not strict:
            return report
        failure = next(
            (outcome for outcome in report.outcomes if not outcome.ok), None
        )
        if failure is not None:
            raise failure.error
        return [bool(verdict) for verdict in report.chunk_matches]

    def scan_corpus(
        self,
        pattern: str,
        data: Union[str, bytes],
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        jobs: Optional[int] = None,
        strict: bool = True,
        fault_plan: Optional[ProcessFaultPlan] = None,
    ) -> Union[CorpusScanResult, ScanReport]:
        """Scan a large input stream chunk-by-chunk (the §6 protocol).

        Chunking bounds per-shard memory and mirrors the hardware's
        windowed execution; chunks are matched independently (a match
        spanning a chunk boundary is not detected — pick ``chunk_bytes``
        above the longest expected match, exactly as the paper sizes
        its 500-byte chunks).

        ``strict``/``fault_plan`` behave as on :meth:`match_many`;
        partial mode returns the full :class:`ScanReport` so a scan with
        a few quarantined chunks still reports every healthy verdict.
        """
        chunks = split_chunks(data, chunk_bytes)
        report = self._scan(pattern, chunks, jobs, fault_plan)
        report.chunk_bytes = chunk_bytes
        if not strict:
            return report
        failure = next(
            (outcome for outcome in report.outcomes if not outcome.ok), None
        )
        if failure is not None:
            raise failure.error
        return CorpusScanResult(
            matched=report.matched,
            chunk_matches=[bool(v) for v in report.chunk_matches],
            bytes_scanned=report.bytes_scanned,
            chunk_bytes=chunk_bytes,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _scan(
        self,
        pattern: str,
        texts: Sequence[TextLike],
        jobs: Optional[int],
        fault_plan: Optional[ProcessFaultPlan],
    ) -> ScanReport:
        """Normalize, fan out (supervised), fold into a report."""
        normalized = [as_input_bytes(text, what="input text") for text in texts]
        if not normalized:
            return ScanReport(matched=False, chunk_bytes=0)
        effective_jobs = resolve_jobs(
            jobs if jobs is not None else self.jobs, self.budget
        )
        entry = self._entry(pattern)
        if effective_jobs <= 1 and fault_plan is None:
            result = run_in_process(entry.match_fn, normalized)
        else:
            result = supervised_matches(
                entry.payload,
                normalized,
                max(2, effective_jobs) if fault_plan is not None else effective_jobs,
                task_timeout=self.budget.max_task_seconds,
                wall_timeout=self.budget.max_wall_seconds,
                policy=self.supervisor,
                fault_plan=fault_plan,
            )
        return ScanReport(
            matched=any(
                outcome.ok and outcome.verdict for outcome in result.outcomes
            ),
            chunk_matches=result.verdicts,
            bytes_scanned=sum(len(data) for data in normalized),
            chunk_bytes=0,
            outcomes=result.outcomes,
            retries=result.retries,
            respawns=result.respawns,
            elapsed=result.elapsed,
            breaker_tripped=result.breaker_tripped,
        )

    def _payload(self, matcher: Matcher) -> WorkerPayload:
        max_vm_steps = self.budget.max_vm_steps
        if isinstance(matcher, CiceroMatcher):
            return WorkerPayload("cicero", matcher.vm.program, max_vm_steps)
        if isinstance(matcher, CiceroSimMatcher):
            return WorkerPayload(
                "cicero-sim",
                matcher.system.program,
                max_vm_steps,
                matcher.system.config,
            )
        if isinstance(matcher, NFAMatcher):
            return WorkerPayload("nfa", matcher.nfa, max_vm_steps)
        if isinstance(matcher, DFAMatcher):
            return WorkerPayload("dfa", matcher.dfa, max_vm_steps)
        raise ValueError(f"cannot shard matcher {matcher!r}")


@dataclass(frozen=True)
class _CacheEntry:
    """What one cache slot holds: matcher + its ready-to-call pieces.

    ``match_fn`` is built once at insert time so a cache hit costs no
    closure construction; ``payload`` is the picklable shard unit
    :func:`~repro.engine.parallel.parallel_matches` ships to workers.
    """

    matcher: Matcher
    payload: WorkerPayload
    match_fn: object


__all__ = [
    "CorpusScanResult",
    "DEFAULT_CACHE_SIZE",
    "Engine",
    "ScanReport",
    "resolve_jobs",
]
