"""The high-throughput matching engine.

:class:`Engine` is the serving layer over the compilers, VMs and
back-ends: one object owning a compiled-pattern LRU cache and a
fan-out policy, exposing three calls —

* :meth:`Engine.match` — one pattern, one text (cache-accelerated);
* :meth:`Engine.match_many` — one pattern, many texts, optionally
  sharded over a ``multiprocessing`` pool;
* :meth:`Engine.scan_corpus` — one pattern over a large input stream,
  chunked with the paper's §6 methodology
  (:func:`~repro.arch.simulator.split_chunks`) and sharded like
  :meth:`match_many`.

Budgets thread through everywhere: compilation honors the budget's
compile-side limits (via the cache key, so differently-budgeted callers
never share artifacts), VM execution honors ``max_vm_steps`` both
in-process and inside workers, ``max_parallel_jobs`` caps the pool, and
``max_task_seconds`` / ``max_wall_seconds`` bound the supervised
parallel scan.

Parallel runs go through the **fault-tolerant scan supervisor**
(:mod:`repro.engine.supervisor`): per-shard futures with timeouts,
crash recovery, retries and quarantine.  The ``strict`` switch on
:meth:`Engine.match_many` / :meth:`Engine.scan_corpus` chooses between
re-raising the first typed per-shard error (strict, the historical
behavior) and returning a :class:`ScanReport` carrying every shard's
individual outcome (partial mode).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Union

from ..arch.config import ArchConfig, ConfigurationError
from ..arch.simulator import DEFAULT_CHUNK_BYTES, split_chunks
from ..backends import (
    BACKENDS,
    CiceroMatcher,
    CiceroSimMatcher,
    DFAMatcher,
    Matcher,
    NFAMatcher,
    compile_with_backend,
)
from ..compiler import CompileOptions
from ..observability import (
    AnyMetrics,
    AnyTracer,
    as_metrics,
    as_tracer,
    default_tracer,
)
from ..prefilter.analysis import INERT_ANALYSIS
from ..prefilter.scanner import PREFILTER_MODES, describe_plan
from ..runtime.budget import Budget, DEFAULT_BUDGET
from ..runtime.encoding import as_input_bytes
from ..runtime.faults import ProcessFaultPlan
from .cache import CacheStats, PatternCache
from .parallel import WorkerPayload, build_match_fn, resolve_mp_context
from .supervisor import (
    DEFAULT_POLICY,
    OUTCOME_STATUSES,
    ShardOutcome,
    SupervisorPolicy,
    run_in_process,
    supervised_matches,
)

DEFAULT_CACHE_SIZE = 256

#: Input types every matching entry point normalizes to ``bytes``.
TextLike = Union[str, bytes, bytearray, memoryview]


def resolve_jobs(jobs: Optional[int], budget: Budget) -> int:
    """Turn a user-facing job count into an effective worker count.

    ``None``/``1`` mean in-process; ``0`` means "all cores"; anything
    else is taken literally — then the budget's ``max_parallel_jobs``
    caps the result.
    """
    if jobs is not None and jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    effective = budget.effective_jobs(jobs)
    return effective if effective is not None else 1


@dataclass
class CorpusScanResult:
    """Outcome of one :meth:`Engine.scan_corpus` call."""

    matched: bool
    chunk_matches: List[Optional[bool]] = field(default_factory=list)
    bytes_scanned: int = 0
    chunk_bytes: int = DEFAULT_CHUNK_BYTES

    @property
    def chunks(self) -> int:
        return len(self.chunk_matches)

    @property
    def matched_chunks(self) -> int:
        return sum(1 for match in self.chunk_matches if match)

    def __bool__(self) -> bool:
        return self.matched


@dataclass
class ScanReport(CorpusScanResult):
    """A :class:`CorpusScanResult` that survives shard failures.

    Partial mode (``strict=False``) returns one of these instead of
    raising: every shard settles in exactly one :class:`ShardOutcome`
    (``ok | error | timeout | quarantined``), ``chunk_matches`` holds
    ``None`` at failed indices, and the supervision accounting (retry
    count, pool respawns, elapsed wall time, circuit-breaker state) is
    attached for observability.
    """

    outcomes: List[ShardOutcome] = field(default_factory=list)
    retries: int = 0
    respawns: int = 0
    elapsed: float = 0.0
    breaker_tripped: bool = False

    @property
    def failed_chunks(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def quarantined(self) -> int:
        return sum(
            1 for outcome in self.outcomes if outcome.status == "quarantined"
        )

    @property
    def complete(self) -> bool:
        """Did every shard produce a verdict?"""
        return self.failed_chunks == 0

    def errors(self) -> List[ShardOutcome]:
        """The failed outcomes, in shard order."""
        return [outcome for outcome in self.outcomes if not outcome.ok]


class Engine:
    """Cached, budget-aware, optionally parallel matching front door."""

    def __init__(
        self,
        backend: str = "cicero",
        options: Optional[CompileOptions] = None,
        budget: Optional[Budget] = None,
        config: Optional[ArchConfig] = None,
        max_dfa_states: Optional[int] = 50_000,
        cache_size: int = DEFAULT_CACHE_SIZE,
        jobs: Optional[int] = None,
        mp_context: Optional[str] = None,
        supervisor: Optional[SupervisorPolicy] = None,
        metrics: Optional[AnyMetrics] = None,
        tracer: Optional[AnyTracer] = None,
        collect_worker_metrics: bool = False,
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; available: {sorted(BACKENDS)}"
            )
        self.backend = backend
        self.options = options if options is not None else CompileOptions()
        if self.options.prefilter not in PREFILTER_MODES:
            raise ValueError(
                f"prefilter must be one of {PREFILTER_MODES}, "
                f"got {self.options.prefilter!r}"
            )
        self.budget = budget if budget is not None else DEFAULT_BUDGET
        self.config = config
        self.max_dfa_states = max_dfa_states
        self.jobs = jobs
        # Validate eagerly: a typo'd start method should fail at
        # construction, not inside the first parallel scan.
        resolve_mp_context(mp_context)
        self.mp_context = mp_context
        policy = supervisor if supervisor is not None else DEFAULT_POLICY
        if policy.mp_context != mp_context and mp_context is not None:
            policy = replace(policy, mp_context=mp_context)
        self.supervisor = policy
        # Telemetry sinks resolve at construction: ``None`` metrics mean
        # the process-wide default registry (so ``recording()`` blocks
        # see engines built inside them), ``None`` tracer the process
        # default, which is the no-op NULL_TRACER unless recording.
        self.metrics = as_metrics(metrics)
        self.tracer = as_tracer(tracer if tracer is not None else default_tracer())
        self._instruments = _EngineInstruments.create(self.metrics)
        # Opt-in: parallel workers record VM/simulator counters locally
        # and ship per-shard deltas home; ``_scan`` folds them into this
        # registry.  Off by default so worker hot loops stay on their
        # uninstrumented copies (the gated bench ceiling).
        self.collect_worker_metrics = bool(
            collect_worker_metrics and self.metrics.enabled
        )
        self._cache = PatternCache(cache_size, metrics=self.metrics)
        # The options/budget halves of every cache key are fixed for the
        # engine's lifetime; computing them once keeps the per-request
        # cache-hit cost at a tuple construction plus a dict probe.
        self._options_key = self.options.cache_key()
        self._budget_key = self.budget.cache_key()

    # ------------------------------------------------------------------
    # Compilation (cached)
    # ------------------------------------------------------------------
    def matcher(self, pattern: str, backend: Optional[str] = None) -> Matcher:
        """The compiled matcher for ``pattern`` — cached across calls."""
        return self._entry(pattern, backend).matcher

    def _entry(
        self, pattern: str, backend: Optional[str] = None
    ) -> "_CacheEntry":
        backend = backend if backend is not None else self.backend
        key = (pattern, backend, self._options_key, self._budget_key)
        return self._cache.get_or_build(
            key, lambda: self._build_entry(pattern, backend)
        )

    def _build_entry(self, pattern: str, backend: str) -> "_CacheEntry":
        options = self.options
        if options.budget is None:
            options = replace(options, budget=self.budget)
        matcher = compile_with_backend(
            pattern,
            backend,
            options=options,
            config=self.config,
            max_dfa_states=self.max_dfa_states,
        )
        payload = self._payload(matcher)
        # The in-process match_fn only takes the metrics registry when a
        # prefilter stage is active (the ``repro_prefilter_*`` counters
        # live there); the plain-VM path stays on its uninstrumented
        # loop, preserving the observability-overhead gate.
        match_fn = build_match_fn(
            payload,
            metrics=(
                self.metrics
                if payload.prefilter != "off" and self.metrics.enabled
                else None
            ),
        )
        if (
            self.tracer.enabled
            and isinstance(matcher, CiceroMatcher)
            and payload.prefilter != "off"
        ):
            analysis = matcher.vm.program.analysis or INERT_ANALYSIS
            plan = describe_plan(analysis, payload.prefilter)
            with self.tracer.span(
                "prefilter.plan",
                pattern=pattern,
                mode=plan["mode"],
                stages=" -> ".join(plan["stages"]),
                inert=plan["inert"],
                inert_reason=plan["inert_reason"],
            ):
                pass
        return _CacheEntry(matcher, payload, match_fn)

    def cache_stats(self) -> CacheStats:
        return self._cache.stats()

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, pattern: str, text: TextLike) -> bool:
        """One text through the cached matcher (budgeted VM steps)."""
        if self._instruments is not None:
            self._instruments.requests["match"].inc()
        data = as_input_bytes(text, what="input text")
        return self._entry(pattern).match_fn(data)

    def match_many(
        self,
        pattern: str,
        texts: Sequence[TextLike],
        jobs: Optional[int] = None,
        strict: bool = True,
        fault_plan: Optional[ProcessFaultPlan] = None,
    ) -> Union[List[bool], ScanReport]:
        """Every text's verdict, in input order.

        With ``jobs > 1`` the texts are sharded over a supervised worker
        pool; the pattern is compiled **once** in the calling process
        and workers rebuild their matcher from the pickled program, so
        compilation cost does not multiply with the pool size.

        ``strict=True`` (default) returns a plain verdict list and
        re-raises the first typed per-shard error.  ``strict=False``
        returns a :class:`ScanReport`: healthy shards keep their
        verdicts, failed shards carry a typed
        :class:`~repro.engine.supervisor.ShardOutcome` instead of
        poisoning the batch.  ``fault_plan`` is the fault-injection test
        hook (:class:`~repro.runtime.faults.ProcessFaultPlan`).
        """
        if self._instruments is not None:
            self._instruments.requests["match_many"].inc()
        report = self._scan(pattern, texts, jobs, fault_plan)
        if not strict:
            return report
        failure = next(
            (outcome for outcome in report.outcomes if not outcome.ok), None
        )
        if failure is not None:
            raise failure.error
        return [bool(verdict) for verdict in report.chunk_matches]

    def scan_corpus(
        self,
        pattern: str,
        data: Union[str, bytes],
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        jobs: Optional[int] = None,
        strict: bool = True,
        fault_plan: Optional[ProcessFaultPlan] = None,
    ) -> Union[CorpusScanResult, ScanReport]:
        """Scan a large input stream chunk-by-chunk (the §6 protocol).

        Chunking bounds per-shard memory and mirrors the hardware's
        windowed execution; chunks are matched independently (a match
        spanning a chunk boundary is not detected — pick ``chunk_bytes``
        above the longest expected match, exactly as the paper sizes
        its 500-byte chunks).

        ``strict``/``fault_plan`` behave as on :meth:`match_many`;
        partial mode returns the full :class:`ScanReport` so a scan with
        a few quarantined chunks still reports every healthy verdict.
        """
        if self._instruments is not None:
            self._instruments.requests["scan_corpus"].inc()
        chunks = split_chunks(data, chunk_bytes)
        report = self._scan(pattern, chunks, jobs, fault_plan)
        report.chunk_bytes = chunk_bytes
        if not strict:
            return report
        failure = next(
            (outcome for outcome in report.outcomes if not outcome.ok), None
        )
        if failure is not None:
            raise failure.error
        return CorpusScanResult(
            matched=report.matched,
            chunk_matches=[bool(v) for v in report.chunk_matches],
            bytes_scanned=report.bytes_scanned,
            chunk_bytes=chunk_bytes,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _scan(
        self,
        pattern: str,
        texts: Sequence[TextLike],
        jobs: Optional[int],
        fault_plan: Optional[ProcessFaultPlan],
    ) -> ScanReport:
        """Normalize, fan out (supervised), fold into a report."""
        normalized = [as_input_bytes(text, what="input text") for text in texts]
        if not normalized:
            return ScanReport(matched=False, chunk_bytes=0)
        effective_jobs = resolve_jobs(
            jobs if jobs is not None else self.jobs, self.budget
        )
        entry = self._entry(pattern)
        tracer = self.tracer
        with tracer.span(
            "engine.scan",
            pattern=pattern,
            shards=len(normalized),
            jobs=effective_jobs,
        ) as span:
            if effective_jobs <= 1 and fault_plan is None:
                result = run_in_process(entry.match_fn, normalized)
            else:
                result = supervised_matches(
                    entry.payload,
                    normalized,
                    max(2, effective_jobs)
                    if fault_plan is not None
                    else effective_jobs,
                    task_timeout=self.budget.max_task_seconds,
                    wall_timeout=self.budget.max_wall_seconds,
                    policy=self.supervisor,
                    fault_plan=fault_plan,
                    tracer=tracer,
                )
            if tracer.enabled:
                span.set(
                    failed=sum(1 for o in result.outcomes if not o.ok),
                    retries=result.retries,
                    respawns=result.respawns,
                    breaker_tripped=result.breaker_tripped,
                )
        if self._instruments is not None:
            self._instruments.record_scan(result, normalized)
            # Fold worker-local VM/sim counter deltas back into the
            # parent registry, so `repro_vm_steps_total` & co. stay
            # accurate whether a scan ran in-process or sharded.
            for outcome in result.outcomes:
                if outcome.vm_counters:
                    for name, value in outcome.vm_counters.items():
                        self.metrics.counter(name).inc(value)
        return ScanReport(
            matched=any(
                outcome.ok and outcome.verdict for outcome in result.outcomes
            ),
            chunk_matches=result.verdicts,
            bytes_scanned=sum(len(data) for data in normalized),
            chunk_bytes=0,
            outcomes=result.outcomes,
            retries=result.retries,
            respawns=result.respawns,
            elapsed=result.elapsed,
            breaker_tripped=result.breaker_tripped,
        )

    def _payload(self, matcher: Matcher) -> WorkerPayload:
        max_vm_steps = self.budget.max_vm_steps
        collect = self.collect_worker_metrics
        if isinstance(matcher, CiceroMatcher):
            return WorkerPayload(
                "cicero",
                matcher.vm.program,
                max_vm_steps,
                collect_vm_metrics=collect,
                prefilter=self.options.prefilter,
                max_dfa_states=self.budget.max_dfa_states,
            )
        if isinstance(matcher, CiceroSimMatcher):
            return WorkerPayload(
                "cicero-sim",
                matcher.system.program,
                max_vm_steps,
                matcher.system.config,
                collect_vm_metrics=collect,
            )
        if isinstance(matcher, NFAMatcher):
            return WorkerPayload("nfa", matcher.nfa, max_vm_steps)
        if isinstance(matcher, DFAMatcher):
            return WorkerPayload("dfa", matcher.dfa, max_vm_steps)
        raise ValueError(f"cannot shard matcher {matcher!r}")


class _EngineInstruments:
    """Pre-resolved metric handles for the engine's hot paths.

    Registry lookups take a lock and normalize labels; resolving every
    instrument once at engine construction keeps the per-request cost
    at plain ``Counter.inc`` calls.  ``create`` returns ``None`` for a
    disabled registry so call sites guard with one identity check.
    """

    __slots__ = (
        "requests",
        "shards",
        "retries",
        "respawns",
        "breaker_trips",
        "bytes_scanned",
        "scan_seconds",
    )

    @classmethod
    def create(cls, metrics) -> Optional["_EngineInstruments"]:
        if metrics is None or not metrics.enabled:
            return None
        instruments = cls()
        instruments.requests = {
            call: metrics.counter(
                "repro_engine_requests_total",
                labels={"call": call},
                help_text="engine entry-point invocations",
            )
            for call in ("match", "match_many", "scan_corpus")
        }
        instruments.shards = {
            status: metrics.counter(
                "repro_scan_shards_total",
                labels={"status": status},
                help_text="settled scan shards by final status",
            )
            for status in OUTCOME_STATUSES
        }
        instruments.retries = metrics.counter(
            "repro_scan_retries_total",
            help_text="shard attempts re-queued by the supervisor",
        )
        instruments.respawns = metrics.counter(
            "repro_scan_respawns_total",
            help_text="worker pools respawned after crashes",
        )
        instruments.breaker_trips = metrics.counter(
            "repro_scan_breaker_trips_total",
            help_text="scans aborted by the circuit breaker",
        )
        instruments.bytes_scanned = metrics.counter(
            "repro_scan_bytes_total",
            help_text="input bytes fed through engine scans",
        )
        instruments.scan_seconds = metrics.histogram(
            "repro_scan_seconds",
            help_text="wall-clock seconds per engine scan",
        )
        return instruments

    def record_scan(self, result, normalized: Sequence[bytes]) -> None:
        """Fold one supervisor result into the registry.

        Called exactly once per :meth:`Engine._scan`, and every shard
        settles in exactly one outcome, so summing
        ``repro_scan_shards_total`` across statuses always equals the
        number of shards dispatched.
        """
        shards = self.shards
        for outcome in result.outcomes:
            shards[outcome.status].inc()
        if result.retries:
            self.retries.inc(result.retries)
        if result.respawns:
            self.respawns.inc(result.respawns)
        if result.breaker_tripped:
            self.breaker_trips.inc()
        self.bytes_scanned.inc(sum(len(data) for data in normalized))
        self.scan_seconds.observe(result.elapsed)


@dataclass(frozen=True)
class _CacheEntry:
    """What one cache slot holds: matcher + its ready-to-call pieces.

    ``match_fn`` is built once at insert time so a cache hit costs no
    closure construction; ``payload`` is the picklable shard unit
    :func:`~repro.engine.parallel.parallel_matches` ships to workers.
    """

    matcher: Matcher
    payload: WorkerPayload
    match_fn: object


__all__ = [
    "CorpusScanResult",
    "DEFAULT_CACHE_SIZE",
    "Engine",
    "ScanReport",
    "resolve_jobs",
]
