"""High-throughput matching engine: cache, fast VMs, supervised sharding.

The serving-oriented layer the ROADMAP's north star asks for, built on
four reusable pieces:

* :mod:`repro.engine.cache` — a thread-safe LRU
  :class:`~repro.engine.cache.PatternCache` keyed by the complete
  compilation identity, with hit/miss/eviction counters;
* :mod:`repro.engine.parallel` — corpus sharding over a
  ``multiprocessing`` pool where workers rebuild matchers from pickled
  programs (never from the pattern, so compilation runs once);
* :mod:`repro.engine.supervisor` — the fault-tolerant scan supervisor:
  per-shard futures with timeouts, crash recovery, retries with backoff,
  quarantine, and a circuit breaker (see ``docs/robustness.md``);
* :mod:`repro.engine.core` — :class:`~repro.engine.core.Engine`, the
  front door tying them to the multi-backend compilation flow, with the
  ``strict``/partial switch returning
  :class:`~repro.engine.core.ScanReport` for degraded runs.

See ``docs/performance.md`` for cache semantics, the sharding model,
and how to read ``BENCH_engine.json``.
"""

from .cache import CacheStats, PatternCache, matcher_cache_key
from .core import (
    DEFAULT_CACHE_SIZE,
    CorpusScanResult,
    Engine,
    ScanReport,
    resolve_jobs,
)
from .parallel import (
    WorkerPayload,
    parallel_matches,
    resolve_mp_context,
)
from .supervisor import (
    RetryPolicy,
    ShardOutcome,
    SupervisorPolicy,
    SupervisorResult,
    supervised_matches,
)

__all__ = [
    "CacheStats",
    "CorpusScanResult",
    "DEFAULT_CACHE_SIZE",
    "Engine",
    "PatternCache",
    "RetryPolicy",
    "ScanReport",
    "ShardOutcome",
    "SupervisorPolicy",
    "SupervisorResult",
    "WorkerPayload",
    "matcher_cache_key",
    "parallel_matches",
    "resolve_jobs",
    "resolve_mp_context",
    "supervised_matches",
]
