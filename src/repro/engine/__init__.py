"""High-throughput matching engine: cache, fast VMs, corpus sharding.

The serving-oriented layer the ROADMAP's north star asks for, built on
three reusable pieces:

* :mod:`repro.engine.cache` — a thread-safe LRU
  :class:`~repro.engine.cache.PatternCache` keyed by the complete
  compilation identity, with hit/miss/eviction counters;
* :mod:`repro.engine.parallel` — corpus sharding over a
  ``multiprocessing`` pool where workers rebuild matchers from pickled
  programs (never from the pattern, so compilation runs once);
* :mod:`repro.engine.core` — :class:`~repro.engine.core.Engine`, the
  front door tying both to the multi-backend compilation flow.

See ``docs/performance.md`` for cache semantics, the sharding model,
and how to read ``BENCH_engine.json``.
"""

from .cache import CacheStats, PatternCache, matcher_cache_key
from .core import DEFAULT_CACHE_SIZE, CorpusScanResult, Engine, resolve_jobs
from .parallel import WorkerPayload, parallel_matches

__all__ = [
    "CacheStats",
    "CorpusScanResult",
    "DEFAULT_CACHE_SIZE",
    "Engine",
    "PatternCache",
    "WorkerPayload",
    "matcher_cache_key",
    "parallel_matches",
    "resolve_jobs",
]
