"""Dialect registration.

A :class:`Context` owns a set of :class:`Dialect` s, each of which maps
fully qualified operation names (``"regex.match_char"``) to their Python
classes.  The textual IR parser consults the context to materialize
registered op classes; unknown names fall back to generic
:class:`~repro.ir.operation.Operation` instances when the context allows
unregistered dialects (useful in tests).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Type

from .diagnostics import IRError
from .operation import ModuleOp, Operation


class Dialect:
    """A named namespace of operation classes."""

    def __init__(self, name: str, description: str = ""):
        if not name or "." in name:
            raise IRError(f"invalid dialect name: {name!r}")
        self.name = name
        self.description = description
        self.operations: Dict[str, Type[Operation]] = {}

    def register_op(self, op_class: Type[Operation]) -> Type[Operation]:
        """Register an op class; usable as a decorator."""
        op_name = op_class.OP_NAME
        dialect_prefix = op_name.split(".", 1)[0]
        if dialect_prefix != self.name:
            raise IRError(
                f"op '{op_name}' does not belong to dialect '{self.name}'"
            )
        if op_name in self.operations:
            raise IRError(f"duplicate registration of op '{op_name}'")
        self.operations[op_name] = op_class
        return op_class

    def op_names(self) -> Iterable[str]:
        return sorted(self.operations)


class Context:
    """Registry of dialects, consulted when materializing operations."""

    def __init__(self, allow_unregistered: bool = False):
        self.dialects: Dict[str, Dialect] = {}
        self.allow_unregistered = allow_unregistered
        builtin = Dialect("builtin", "Built-in structural operations")
        builtin.register_op(ModuleOp)
        self.register_dialect(builtin)

    def register_dialect(self, dialect: Dialect) -> Dialect:
        if dialect.name in self.dialects:
            raise IRError(f"dialect '{dialect.name}' already registered")
        self.dialects[dialect.name] = dialect
        return dialect

    def get_dialect(self, name: str) -> Dialect:
        try:
            return self.dialects[name]
        except KeyError:
            raise IRError(f"unknown dialect '{name}'") from None

    def lookup_op_class(self, op_name: str) -> Optional[Type[Operation]]:
        dialect_name = op_name.split(".", 1)[0]
        dialect = self.dialects.get(dialect_name)
        if dialect is not None and op_name in dialect.operations:
            return dialect.operations[op_name]
        if self.allow_unregistered:
            return None
        raise IRError(f"unregistered operation '{op_name}'")

    def create_op(self, op_name: str, attributes=None, num_regions: int = 0) -> Operation:
        """Materialize an op by name (used by the textual parser)."""
        op_class = self.lookup_op_class(op_name)
        if op_class is None:
            return Operation(
                name=op_name, attributes=attributes, num_regions=num_regions
            )
        op = op_class.__new__(op_class)
        Operation.__init__(op, name=op_name, attributes=attributes, num_regions=num_regions)
        return op


def default_context() -> Context:
    """A context with both paper dialects registered."""
    from ..dialects.cicero.ops import CICERO_DIALECT
    from ..dialects.regex.ops import REGEX_DIALECT

    context = Context()
    context.register_dialect(REGEX_DIALECT)
    context.register_dialect(CICERO_DIALECT)
    return context
