"""Diagnostics and error types shared by the whole compiler stack.

The IR framework mirrors MLIR's split between *locations* (where a
construct came from) and *diagnostics* (errors and warnings attached to a
location).  Locations originate in the regex frontend and are threaded
through AST nodes and IR operations so every later pass can report errors
pointing back at the offending character of the original pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class ReproError(Exception):
    """Base class for every error raised by this library.

    Every subclass carries a stable machine-readable :attr:`code` (the
    error taxonomy used by services and the CLI) and, when one is known,
    a :attr:`location` pointing back into the original pattern.
    Callers that wrap the whole pipeline therefore need exactly one
    ``except ReproError`` clause and can always serialize the failure
    with :meth:`to_dict`.
    """

    #: Machine-readable error code, stable across releases.
    code: str = "REPRO-ERROR"
    #: Source location of the offending construct, when known.
    location: Optional["Location"] = None

    def __reduce__(self):
        # Subclasses take rich positional arguments (limits, patterns,
        # offsets) and bake them into one message, so the default
        # exception reduction — ``cls(*self.args)`` — cannot rebuild
        # them.  Supervisor workers ship these errors across the process
        # boundary, so reconstruct from the instance state instead.
        return (
            _rebuild_error,
            (self.__class__, self.args, self.__dict__.copy()),
        )

    def to_dict(self) -> dict:
        """Serializable view of the error (for APIs, logs, the CLI)."""
        location = None
        if self.location is not None:
            location = {
                "source": self.location.source,
                "column": self.location.column,
            }
        return {"code": self.code, "message": str(self), "location": location}


def _rebuild_error(cls, args, state):
    """Unpickle helper: restore a :class:`ReproError` without rerunning
    its ``__init__`` (whose signature varies per subclass)."""
    error = cls.__new__(cls)
    Exception.__init__(error, *args)
    error.__dict__.update(state)
    return error


class IRError(ReproError):
    """Structural misuse of the IR (bad insertion, detached op, ...)."""

    code = "REPRO-IR"


class VerificationError(ReproError):
    """An operation or module failed verification."""

    code = "REPRO-IR-VERIFY"

    def __init__(self, message: str, op: object = None):
        self.op = op
        if op is not None:
            message = f"{message}\n  in operation: {op}"
        super().__init__(message)


class ParseError(ReproError):
    """Raised by the textual IR parser and by the regex frontend."""

    code = "REPRO-PARSE"

    def __init__(self, message: str, location: Optional["Location"] = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class LoweringError(ReproError):
    """A dialect conversion could not lower an operation."""

    code = "REPRO-LOWERING"


class CodegenError(ReproError):
    """Code generation could not encode the program (e.g. too large)."""

    code = "REPRO-CODEGEN"


class BudgetExceeded(ReproError):
    """A resource budget tripped before the pipeline could finish.

    The runtime layer (:mod:`repro.runtime`) raises a dedicated subclass
    per guarded resource — parser nesting depth, counted-repetition
    expansion, compiled program size, optimization-pass time, VM steps,
    simulator cycles/threads, equivalence-check states — so a service
    can convert any of them into a well-defined "try a simpler pattern /
    shorter input" response instead of hanging or dying on
    ``RecursionError``.

    :attr:`recoverable` marks budgets that graceful degradation
    (:func:`repro.runtime.degrade.compile_with_degradation`) may clear
    by disabling optional optimization passes.
    """

    code = "REPRO-BUDGET"
    #: Can retrying with optimization passes disabled possibly help?
    recoverable = False

    def __init__(
        self,
        message: str,
        *,
        limit: Optional[float] = None,
        spent: Optional[float] = None,
    ):
        self.limit = limit
        self.spent = spent
        super().__init__(message)


@dataclass(frozen=True)
class Location:
    """A source location inside the original regular expression.

    ``column`` is the zero-based offset of the construct in the pattern
    string; ``source`` optionally names where the pattern came from (a
    benchmark file, the CLI, ...).
    """

    column: int = 0
    source: str = "<pattern>"

    def __str__(self) -> str:
        return f"{self.source}:{self.column}"


UNKNOWN_LOCATION = Location(column=-1, source="<unknown>")
