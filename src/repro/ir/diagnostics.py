"""Diagnostics and error types shared by the whole compiler stack.

The IR framework mirrors MLIR's split between *locations* (where a
construct came from) and *diagnostics* (errors and warnings attached to a
location).  Locations originate in the regex frontend and are threaded
through AST nodes and IR operations so every later pass can report errors
pointing back at the offending character of the original pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class ReproError(Exception):
    """Base class for every error raised by this library."""


class IRError(ReproError):
    """Structural misuse of the IR (bad insertion, detached op, ...)."""


class VerificationError(ReproError):
    """An operation or module failed verification."""

    def __init__(self, message: str, op: object = None):
        self.op = op
        if op is not None:
            message = f"{message}\n  in operation: {op}"
        super().__init__(message)


class ParseError(ReproError):
    """Raised by the textual IR parser and by the regex frontend."""

    def __init__(self, message: str, location: Optional["Location"] = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class LoweringError(ReproError):
    """A dialect conversion could not lower an operation."""


class CodegenError(ReproError):
    """Code generation could not encode the program (e.g. too large)."""


@dataclass(frozen=True)
class Location:
    """A source location inside the original regular expression.

    ``column`` is the zero-based offset of the construct in the pattern
    string; ``source`` optionally names where the pattern came from (a
    benchmark file, the CLI, ...).
    """

    column: int = 0
    source: str = "<pattern>"

    def __str__(self) -> str:
        return f"{self.source}:{self.column}"


UNKNOWN_LOCATION = Location(column=-1, source="<unknown>")
