"""Core IR structure: operations, blocks, and regions.

This is the region-based subset of MLIR that the paper's dialects use.
An :class:`Operation` carries a dialect-qualified name, an attribute
dictionary, and a list of :class:`Region` s; each region holds
:class:`Block` s which hold operations.  The regex and cicero dialects are
attribute/region dialects (no SSA values are needed), which keeps the
framework small while preserving the multi-level structure the paper's
compilation flow relies on.

Concrete dialect operations subclass :class:`Operation` and declare:

* ``OP_NAME`` — the fully qualified name, e.g. ``"regex.match_char"``.
* ``verify_op`` — structural invariants (arity of regions, attribute
  types), raising :class:`~repro.ir.diagnostics.VerificationError`.
* optional accessors for their attributes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence

from .attributes import Attribute, wrap_attribute
from .diagnostics import IRError, Location, UNKNOWN_LOCATION, VerificationError


class Region:
    """An ordered list of blocks owned by an operation."""

    __slots__ = ("parent_op", "blocks")

    def __init__(self, parent_op: Optional["Operation"] = None):
        self.parent_op = parent_op
        self.blocks: List[Block] = []

    def add_block(self, block: Optional["Block"] = None) -> "Block":
        block = block if block is not None else Block()
        if block.parent_region is not None:
            raise IRError("block already belongs to a region")
        block.parent_region = self
        self.blocks.append(block)
        return block

    @property
    def entry_block(self) -> "Block":
        if not self.blocks:
            raise IRError("region has no blocks")
        return self.blocks[0]

    def is_empty(self) -> bool:
        return all(not block.operations for block in self.blocks)

    def ops(self) -> Iterator["Operation"]:
        """Iterate over all operations directly inside this region."""
        for block in self.blocks:
            yield from block.operations

    def clone(self) -> "Region":
        clone = Region()
        for block in self.blocks:
            clone.add_block(block.clone())
        return clone

    def __iter__(self) -> Iterator["Block"]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)


class Block:
    """An ordered list of operations inside a region."""

    __slots__ = ("parent_region", "operations")

    def __init__(self):
        self.parent_region: Optional[Region] = None
        self.operations: List[Operation] = []

    def append(self, op: "Operation") -> "Operation":
        if op.parent_block is not None:
            raise IRError("operation already belongs to a block")
        op.parent_block = self
        self.operations.append(op)
        return op

    def insert(self, index: int, op: "Operation") -> "Operation":
        if op.parent_block is not None:
            raise IRError("operation already belongs to a block")
        op.parent_block = self
        self.operations.insert(index, op)
        return op

    def remove(self, op: "Operation") -> None:
        self.operations.remove(op)
        op.parent_block = None

    def index_of(self, op: "Operation") -> int:
        for index, candidate in enumerate(self.operations):
            if candidate is op:
                return index
        raise IRError("operation not found in block")

    def clone(self) -> "Block":
        clone = Block()
        for op in self.operations:
            clone.append(op.clone())
        return clone

    def __iter__(self) -> Iterator["Operation"]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)


class Operation:
    """A generic IR operation.

    Direct instantiation creates an *unregistered* op, which the printer
    and parser support for testing; dialect ops subclass this and set
    ``OP_NAME``.
    """

    OP_NAME: str = "builtin.unregistered"

    __slots__ = ("name", "attributes", "regions", "parent_block", "location")

    def __init__(
        self,
        name: Optional[str] = None,
        attributes: Optional[Dict[str, object]] = None,
        num_regions: int = 0,
        location: Location = UNKNOWN_LOCATION,
    ):
        self.name = name if name is not None else type(self).OP_NAME
        self.attributes: Dict[str, Attribute] = {}
        if attributes:
            for key, value in attributes.items():
                # Fast path: most callers pass ready-made attributes.
                self.attributes[key] = (
                    value if isinstance(value, Attribute) else wrap_attribute(value)
                )
        self.regions: List[Region] = []
        for _ in range(num_regions):
            region = Region(parent_op=self)
            region.add_block()
            self.regions.append(region)
        self.parent_block: Optional[Block] = None
        self.location = location

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    @property
    def dialect_name(self) -> str:
        return self.name.split(".", 1)[0]

    @property
    def short_name(self) -> str:
        return self.name.split(".", 1)[-1]

    # ------------------------------------------------------------------
    # Attribute helpers
    # ------------------------------------------------------------------
    def set_attr(self, key: str, value) -> None:
        self.attributes[key] = wrap_attribute(value)

    def get_attr(self, key: str) -> Optional[Attribute]:
        return self.attributes.get(key)

    def bool_attr(self, key: str, default: bool = False) -> bool:
        attr = self.attributes.get(key)
        return attr.value if attr is not None else default

    def int_attr(self, key: str, default: int = 0) -> int:
        attr = self.attributes.get(key)
        return attr.value if attr is not None else default

    # ------------------------------------------------------------------
    # Region helpers
    # ------------------------------------------------------------------
    def add_region(self) -> Region:
        region = Region(parent_op=self)
        region.add_block()
        self.regions.append(region)
        return region

    def region(self, index: int = 0) -> Region:
        return self.regions[index]

    def body_ops(self, region_index: int = 0) -> List["Operation"]:
        """Operations of the entry block of the given region."""
        return self.regions[region_index].entry_block.operations

    # ------------------------------------------------------------------
    # Structural manipulation
    # ------------------------------------------------------------------
    @property
    def parent_op(self) -> Optional["Operation"]:
        if self.parent_block is None or self.parent_block.parent_region is None:
            return None
        return self.parent_block.parent_region.parent_op

    def erase(self) -> None:
        """Detach this op from its parent block."""
        if self.parent_block is None:
            raise IRError("cannot erase a detached operation")
        self.parent_block.remove(self)

    def replace_with(self, *replacements: "Operation") -> None:
        """Replace this op in-place with ``replacements`` (may be empty)."""
        block = self.parent_block
        if block is None:
            raise IRError("cannot replace a detached operation")
        index = block.index_of(self)
        block.remove(self)
        for offset, new_op in enumerate(replacements):
            block.insert(index + offset, new_op)

    def move_before(self, other: "Operation") -> None:
        if other.parent_block is None:
            raise IRError("anchor operation is detached")
        if self.parent_block is not None:
            self.parent_block.remove(self)
        block = other.parent_block
        block.insert(block.index_of(other), self)

    def clone(self) -> "Operation":
        """Deep-copy this operation (registered class is preserved)."""
        clone = type(self).__new__(type(self))
        clone.name = self.name
        clone.attributes = dict(self.attributes)
        clone.regions = []
        clone.parent_block = None
        clone.location = self.location
        for region in self.regions:
            region_clone = region.clone()
            region_clone.parent_op = clone
            clone.regions.append(region_clone)
        return clone

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def walk(self, callback: Optional[Callable[["Operation"], None]] = None):
        """Pre-order traversal.  Without a callback, returns an iterator.

        The iterator variant snapshots each block's op list so callers may
        erase the op they are visiting.
        """
        if callback is not None:
            for op in self.walk():
                callback(op)
            return None
        return self._walk_iter()

    def _walk_iter(self) -> Iterator["Operation"]:
        yield self
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.operations):
                    yield from op._walk_iter()

    def walk_post_order(self) -> Iterator["Operation"]:
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.operations):
                    yield from op.walk_post_order()
        yield self

    # ------------------------------------------------------------------
    # Verification and equivalence
    # ------------------------------------------------------------------
    def verify_op(self) -> None:
        """Per-op structural checks; overridden by dialect ops."""

    def verify(self) -> None:
        """Verify this op and everything nested inside it."""
        for op in self.walk():
            op.verify_op()

    def is_structurally_equal(self, other: "Operation") -> bool:
        """Deep structural equality (name, attributes, nested regions)."""
        if self.name != other.name or self.attributes != other.attributes:
            return False
        if len(self.regions) != len(other.regions):
            return False
        for mine, theirs in zip(self.regions, other.regions):
            if len(mine.blocks) != len(theirs.blocks):
                return False
            for my_block, their_block in zip(mine.blocks, theirs.blocks):
                if len(my_block) != len(their_block):
                    return False
                for my_op, their_op in zip(my_block, their_block):
                    if not my_op.is_structurally_equal(their_op):
                        return False
        return True

    def expect_num_regions(self, count: int) -> None:
        if len(self.regions) != count:
            raise VerificationError(
                f"'{self.name}' expects {count} region(s), has {len(self.regions)}",
                self,
            )

    def expect_attr(self, key: str, attr_type: type) -> None:
        attr = self.attributes.get(key)
        if not isinstance(attr, attr_type):
            raise VerificationError(
                f"'{self.name}' expects attribute '{key}' of type "
                f"{attr_type.__name__}, got {type(attr).__name__}",
                self,
            )

    def __str__(self) -> str:
        from .printer import print_op

        return print_op(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class ModuleOp(Operation):
    """Top-level container, one region with a single block."""

    OP_NAME = "builtin.module"

    def __init__(self, location: Location = UNKNOWN_LOCATION):
        super().__init__(num_regions=1, location=location)

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    def verify_op(self) -> None:
        self.expect_num_regions(1)
