"""Insertion-point-based IR construction, mirroring MLIR's OpBuilder."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .diagnostics import IRError
from .operation import Block, Operation, Region


class Builder:
    """Creates operations at a movable insertion point.

    The builder always appends at the end of the current block; use
    :meth:`at_end_of` / :meth:`inside` to move around.  ``inside`` is a
    context manager so nested-region construction reads like the IR it
    produces::

        builder = Builder.at_end_of(module.body)
        root = builder.insert(RootOp(has_prefix=True, has_suffix=True))
        with builder.inside(root):
            concat = builder.insert(ConcatenationOp())
            ...
    """

    def __init__(self, block: Optional[Block] = None):
        self.block = block

    @classmethod
    def at_end_of(cls, block: Block) -> "Builder":
        return cls(block)

    @classmethod
    def at_start_of_region(cls, region: Region) -> "Builder":
        return cls(region.entry_block)

    def insert(self, op: Operation) -> Operation:
        if self.block is None:
            raise IRError("builder has no insertion point")
        return self.block.append(op)

    @contextmanager
    def inside(self, op: Operation, region_index: int = 0):
        """Temporarily move the insertion point into ``op``'s region."""
        if region_index >= len(op.regions):
            raise IRError(
                f"'{op.name}' has no region #{region_index} to build into"
            )
        saved = self.block
        self.block = op.regions[region_index].entry_block
        try:
            yield self
        finally:
            self.block = saved
