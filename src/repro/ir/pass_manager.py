"""Pass management: named passes, pipelines, timing and statistics.

The paper's compilation flow is a linear pipeline of passes over two
dialects; this module provides the scaffolding — pass registration, a
:class:`PassManager` that runs passes in order with per-pass wall-clock
timing (used by the Fig. 9 compile-time benchmark), and verification
between passes (catching transform bugs at the pass boundary where they
were introduced).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .diagnostics import IRError
from .operation import Operation


class Pass:
    """A named transformation over a root operation."""

    #: Unique pipeline name, e.g. ``"regex-factorize-alternations"``.
    PASS_NAME: str = "unnamed"

    def run(self, root: Operation) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pass {self.PASS_NAME}>"


class FunctionPass(Pass):
    """Adapts a plain callable into a pass."""

    def __init__(self, name: str, function: Callable[[Operation], None]):
        self.PASS_NAME = name
        self._function = function

    def run(self, root: Operation) -> None:
        self._function(root)


@dataclass
class PassTiming:
    pass_name: str
    seconds: float


@dataclass
class PipelineResult:
    """Outcome of one PassManager invocation."""

    timings: List[PassTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.timings)

    def seconds_for(self, pass_name: str) -> float:
        return sum(
            timing.seconds for timing in self.timings if timing.pass_name == pass_name
        )


_PASS_REGISTRY: Dict[str, Callable[[], Pass]] = {}


def register_pass(factory: Callable[[], Pass], name: Optional[str] = None):
    """Register a pass factory under its PASS_NAME (usable as decorator)."""
    probe = factory()
    pass_name = name if name is not None else probe.PASS_NAME
    if pass_name in _PASS_REGISTRY:
        raise IRError(f"pass '{pass_name}' already registered")
    _PASS_REGISTRY[pass_name] = factory
    return factory


def create_pass(name: str) -> Pass:
    try:
        factory = _PASS_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_PASS_REGISTRY)) or "<none>"
        raise IRError(f"unknown pass '{name}' (registered: {known})") from None
    return factory()


def registered_pass_names(prefix: Optional[str] = None) -> List[str]:
    names = sorted(_PASS_REGISTRY)
    if prefix is None:
        return names
    return [name for name in names if name.startswith(prefix)]


def pipeline_from_names(
    names, require_prefix: Optional[str] = None, verify_each: bool = False
) -> "PassManager":
    """Build a :class:`PassManager` from registered pass names.

    The injection seam for tuned pipelines: names run in the given
    order, duplicates are allowed (a pass may pay off twice once an
    earlier pass exposed new opportunities).  ``require_prefix``
    rejects names from the wrong dialect — a ``cicero-*`` pass can
    never run on a ``regex``-dialect module — with the same
    :class:`~repro.ir.diagnostics.IRError` an unregistered name raises,
    so callers need one fallback path for both corruptions.
    """
    manager = PassManager(verify_each=verify_each)
    for name in names:
        if require_prefix is not None and not name.startswith(require_prefix):
            raise IRError(
                f"pass '{name}' does not belong to the '{require_prefix}*' "
                f"pipeline stage"
            )
        manager.add(name)
    return manager


class PassManager:
    """Runs a sequence of passes over a module, verifying in between."""

    def __init__(self, verify_each: bool = True):
        self.passes: List[Pass] = []
        self.verify_each = verify_each

    def add(self, pass_or_name) -> "PassManager":
        if isinstance(pass_or_name, str):
            self.passes.append(create_pass(pass_or_name))
        elif isinstance(pass_or_name, Pass):
            self.passes.append(pass_or_name)
        else:
            raise IRError(f"not a pass: {pass_or_name!r}")
        return self

    def run(
        self,
        root: Operation,
        tracer=None,
        span_attrs: Optional[Callable[[Operation], Dict[str, Any]]] = None,
    ) -> PipelineResult:
        """Run every pass over ``root``, timing each.

        ``tracer`` (a :class:`repro.observability.Tracer`, or ``None``)
        gets one ``pass:<name>`` span per pass; ``span_attrs`` computes
        IR statistics (op count, ``D_offset``) recorded as ``*_before``/
        ``*_after`` span attributes together with their deltas.  Both
        are skipped entirely when tracing is disabled, so the untraced
        path is byte-for-byte the historical one.
        """
        result = PipelineResult()
        if self.verify_each:
            root.verify()
        tracing = tracer is not None and tracer.enabled
        for pipeline_pass in self.passes:
            if tracing:
                with tracer.span(f"pass:{pipeline_pass.PASS_NAME}") as span:
                    before = span_attrs(root) if span_attrs is not None else {}
                    for key, value in before.items():
                        span.attributes[f"{key}_before"] = value
                    started = time.perf_counter()
                    pipeline_pass.run(root)
                    elapsed = time.perf_counter() - started
                    after = span_attrs(root) if span_attrs is not None else {}
                    for key, value in after.items():
                        span.attributes[f"{key}_after"] = value
                        prior = before.get(key)
                        if value is not None and prior is not None:
                            span.attributes[f"{key}_delta"] = value - prior
                    span.attributes["seconds"] = elapsed
            else:
                started = time.perf_counter()
                pipeline_pass.run(root)
                elapsed = time.perf_counter() - started
            result.timings.append(PassTiming(pipeline_pass.PASS_NAME, elapsed))
            if self.verify_each:
                root.verify()
        return result
