"""Mini-MLIR IR framework: contexts, dialects, operations, passes.

This package implements the subset of MLIR infrastructure that the
paper's two dialects (``regex`` and ``cicero``) need: attribute-carrying
region-based operations, dialect registration, a textual printer/parser,
greedy pattern rewriting, and a pass manager with per-pass timing.
"""

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    CharAttr,
    CharSetAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    wrap_attribute,
)
from .builder import Builder
from .context import Context, Dialect, default_context
from .diagnostics import (
    CodegenError,
    IRError,
    Location,
    LoweringError,
    ParseError,
    ReproError,
    UNKNOWN_LOCATION,
    VerificationError,
)
from .operation import Block, ModuleOp, Operation, Region
from .parser import parse_op
from .pass_manager import (
    FunctionPass,
    Pass,
    PassManager,
    PipelineResult,
    create_pass,
    register_pass,
    registered_pass_names,
)
from .printer import print_op
from .rewriter import (
    GreedyRewriteDriver,
    RewritePattern,
    RewriteStatistics,
    apply_patterns_greedily,
)

__all__ = [
    "ArrayAttr",
    "Attribute",
    "Block",
    "BoolAttr",
    "Builder",
    "CharAttr",
    "CharSetAttr",
    "CodegenError",
    "Context",
    "Dialect",
    "FunctionPass",
    "GreedyRewriteDriver",
    "IRError",
    "IntegerAttr",
    "Location",
    "LoweringError",
    "ModuleOp",
    "Operation",
    "ParseError",
    "Pass",
    "PassManager",
    "PipelineResult",
    "Region",
    "ReproError",
    "RewritePattern",
    "RewriteStatistics",
    "StringAttr",
    "SymbolRefAttr",
    "UNKNOWN_LOCATION",
    "VerificationError",
    "apply_patterns_greedily",
    "create_pass",
    "default_context",
    "parse_op",
    "print_op",
    "register_pass",
    "registered_pass_names",
    "wrap_attribute",
]
