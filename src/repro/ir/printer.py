"""Textual IR printer.

The syntax is a compact MLIR-like format designed to round-trip through
:mod:`repro.ir.parser`::

    regex.root {hasPrefix = true, hasSuffix = true} ({
      regex.concatenation ({
        regex.piece ({
          regex.match_char {char 'a'}
        })
      })
    })

* The optional ``{...}`` after the op name is the attribute dictionary.
* The optional ``({...}, {...})`` holds the op's regions; blocks beyond
  the first are separated by ``^:`` lines (rarely used by our dialects).
* Empty regions print as ``({})``.
"""

from __future__ import annotations

from io import StringIO

from .attributes import CharAttr
from .operation import Block, Operation, Region

_INDENT = "  "


def _print_attr_dict(op: Operation, out: StringIO) -> None:
    if not op.attributes:
        return
    parts = []
    for key in sorted(op.attributes):
        attr = op.attributes[key]
        if isinstance(attr, CharAttr):
            # ``char 'a'`` already names itself; print as ``key = char 'a'``
            parts.append(f"{key} = {attr.to_text()}")
        else:
            parts.append(f"{key} = {attr.to_text()}")
    out.write(" {" + ", ".join(parts) + "}")


def _print_block(block: Block, out: StringIO, indent: int) -> None:
    for op in block.operations:
        _print_op(op, out, indent)
        out.write("\n")


def _print_region(region: Region, out: StringIO, indent: int) -> None:
    out.write("{")
    if region.is_empty() and len(region.blocks) <= 1:
        out.write("}")
        return
    out.write("\n")
    for block_index, block in enumerate(region.blocks):
        if block_index > 0:
            out.write(_INDENT * indent + "^:\n")
        _print_block(block, out, indent + 1)
    out.write(_INDENT * indent + "}")


def _print_op(op: Operation, out: StringIO, indent: int) -> None:
    out.write(_INDENT * indent + op.name)
    _print_attr_dict(op, out)
    if op.regions:
        out.write(" (")
        for region_index, region in enumerate(op.regions):
            if region_index > 0:
                out.write(", ")
            _print_region(region, out, indent)
        out.write(")")


def print_op(op: Operation) -> str:
    """Render an operation (and everything nested in it) as text."""
    out = StringIO()
    _print_op(op, out, 0)
    return out.getvalue()
