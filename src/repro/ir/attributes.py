"""Attribute system for the IR framework.

Attributes are immutable, hashable values attached to operations, exactly
as in MLIR.  The regex and cicero dialects only need a small zoo:

* :class:`BoolAttr`, :class:`IntegerAttr`, :class:`StringAttr` — scalars.
* :class:`CharAttr` — a single byte (the operand of ``Match``/``NoMatch``).
* :class:`ArrayAttr` — an ordered sequence of attributes.
* :class:`CharSetAttr` — the 256-entry boolean bitmap of ``GroupOp``.
* :class:`SymbolRefAttr` — a symbolic reference to a labelled operation,
  used for jump/split targets before address assignment.

Every attribute knows how to print itself in the textual IR syntax and the
parser in :mod:`repro.ir.parser` knows how to read each form back.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

from .diagnostics import IRError

_PRINTABLE = set(range(0x21, 0x7F))  # visible ASCII, no space
_CHARSET_ESCAPES = {ord("\\"), ord('"'), ord("-")}


class Attribute:
    """Base class of all attributes.  Subclasses must be immutable."""

    __slots__ = ()

    def to_text(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.to_text()})"


class BoolAttr(Attribute):
    """A boolean attribute, printed as ``true`` / ``false``."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        object.__setattr__(self, "value", bool(value))

    def __setattr__(self, name, value):
        raise IRError("attributes are immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, BoolAttr) and other.value == self.value

    def __hash__(self) -> int:
        return hash((BoolAttr, self.value))

    def __bool__(self) -> bool:
        return self.value

    def to_text(self) -> str:
        return "true" if self.value else "false"


class IntegerAttr(Attribute):
    """A 64-bit signed integer attribute."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        object.__setattr__(self, "value", int(value))

    def __setattr__(self, name, value):
        raise IRError("attributes are immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, IntegerAttr) and other.value == self.value

    def __hash__(self) -> int:
        return hash((IntegerAttr, self.value))

    def __int__(self) -> int:
        return self.value

    def to_text(self) -> str:
        return str(self.value)


class StringAttr(Attribute):
    """A UTF-8 string attribute, printed with double quotes."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        object.__setattr__(self, "value", str(value))

    def __setattr__(self, name, value):
        raise IRError("attributes are immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, StringAttr) and other.value == self.value

    def __hash__(self) -> int:
        return hash((StringAttr, self.value))

    def to_text(self) -> str:
        escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'


class CharAttr(Attribute):
    """A single byte (0..255), the operand of match instructions.

    Printed as ``char 'a'`` for printable ASCII and ``char 0xNN``
    otherwise.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        if isinstance(value, str):
            if len(value) != 1:
                raise IRError(f"CharAttr expects one character, got {value!r}")
            value = ord(value)
        value = int(value)
        if not 0 <= value <= 255:
            raise IRError(f"CharAttr value out of byte range: {value}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):
        raise IRError("attributes are immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, CharAttr) and other.value == self.value

    def __hash__(self) -> int:
        return hash((CharAttr, self.value))

    @property
    def char(self) -> str:
        return chr(self.value)

    def to_text(self) -> str:
        if self.value in _PRINTABLE and self.value not in (ord("'"), ord("\\")):
            return f"char '{chr(self.value)}'"
        return f"char 0x{self.value:02X}"


class ArrayAttr(Attribute):
    """An ordered, immutable sequence of attributes."""

    __slots__ = ("elements",)

    def __init__(self, elements: Iterable[Attribute]):
        elems = tuple(elements)
        for elem in elems:
            if not isinstance(elem, Attribute):
                raise IRError(f"ArrayAttr element is not an Attribute: {elem!r}")
        object.__setattr__(self, "elements", elems)

    def __setattr__(self, name, value):
        raise IRError("attributes are immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, ArrayAttr) and other.elements == self.elements

    def __hash__(self) -> int:
        return hash((ArrayAttr, self.elements))

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def to_text(self) -> str:
        return "[" + ", ".join(elem.to_text() for elem in self.elements) + "]"


class CharSetAttr(Attribute):
    """The boolean bitmap argument of ``GroupOp`` (paper Table 3).

    Stored as a 256-bit integer mask for cheap set algebra.  Printed in a
    compact range syntax, e.g. ``charset"a-cx\\x0A"``.
    """

    __slots__ = ("mask",)

    def __init__(self, chars: Iterable = (), mask: int = None):
        if mask is None:
            mask = 0
            for item in chars:
                code = ord(item) if isinstance(item, str) else int(item)
                if not 0 <= code <= 255:
                    raise IRError(f"charset member out of byte range: {code}")
                mask |= 1 << code
        if mask < 0 or mask >> 256:
            raise IRError("charset mask must fit in 256 bits")
        object.__setattr__(self, "mask", mask)

    def __setattr__(self, name, value):
        raise IRError("attributes are immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, CharSetAttr) and other.mask == self.mask

    def __hash__(self) -> int:
        return hash((CharSetAttr, self.mask))

    def __contains__(self, item) -> bool:
        code = ord(item) if isinstance(item, str) else int(item)
        return bool(self.mask >> code & 1)

    def __len__(self) -> int:
        return bin(self.mask).count("1")

    def chars(self) -> Tuple[int, ...]:
        """Member byte values in ascending order."""
        return tuple(code for code in range(256) if self.mask >> code & 1)

    def ranges(self) -> Tuple[Tuple[int, int], ...]:
        """Members grouped into inclusive ``(lo, hi)`` runs."""
        runs = []
        run_start = None
        prev = None
        for code in self.chars():
            if run_start is None:
                run_start = prev = code
            elif code == prev + 1:
                prev = code
            else:
                runs.append((run_start, prev))
                run_start = prev = code
        if run_start is not None:
            runs.append((run_start, prev))
        return tuple(runs)

    def complement(self) -> "CharSetAttr":
        return CharSetAttr(mask=~self.mask & (1 << 256) - 1)

    def union(self, other: "CharSetAttr") -> "CharSetAttr":
        return CharSetAttr(mask=self.mask | other.mask)

    @staticmethod
    def _escape(code: int) -> str:
        if code in _PRINTABLE and code not in _CHARSET_ESCAPES:
            return chr(code)
        if code in _CHARSET_ESCAPES:
            return "\\" + chr(code)
        return f"\\x{code:02X}"

    def to_text(self) -> str:
        parts = []
        for lo, hi in self.ranges():
            if hi - lo >= 2:
                parts.append(f"{self._escape(lo)}-{self._escape(hi)}")
            else:
                parts.extend(self._escape(code) for code in range(lo, hi + 1))
        return f'charset"{"".join(parts)}"'


class SymbolRefAttr(Attribute):
    """A reference to a labelled operation, printed as ``@name``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise IRError("symbol reference needs a non-empty name")
        object.__setattr__(self, "name", str(name))

    def __setattr__(self, name, value):
        raise IRError("attributes are immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, SymbolRefAttr) and other.name == self.name

    def __hash__(self) -> int:
        return hash((SymbolRefAttr, self.name))

    def to_text(self) -> str:
        return f"@{self.name}"


def wrap_attribute(value) -> Attribute:
    """Coerce a plain Python value into the matching :class:`Attribute`.

    Booleans must be checked before integers because ``bool`` subclasses
    ``int``.
    """
    if isinstance(value, Attribute):
        return value
    if isinstance(value, bool):
        return BoolAttr(value)
    if isinstance(value, int):
        return IntegerAttr(value)
    if isinstance(value, str):
        return StringAttr(value)
    if isinstance(value, (list, tuple)):
        return ArrayAttr(wrap_attribute(elem) for elem in value)
    if isinstance(value, (set, frozenset)):
        return CharSetAttr(value)
    raise IRError(f"cannot convert {value!r} to an attribute")
