"""Textual IR parser: the inverse of :mod:`repro.ir.printer`.

Only the forms the printer emits (plus benign whitespace/comment
variations) are accepted.  Registered op classes are materialized through
the :class:`~repro.ir.context.Context`; each parsed op is verified on the
way out so malformed text fails early.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    CharAttr,
    CharSetAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
)
from .context import Context
from .diagnostics import Location, ParseError
from .operation import Operation


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<charlit>'(?:\\.|[^'\\])')
  | (?P<hexnum>0x[0-9A-Fa-f]+)
  | (?P<number>-?\d+)
  | (?P<symbol>@[A-Za-z_][A-Za-z0-9_\-$]*)
  | (?P<blocksep>\^:)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>[{}()\[\],=])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[_Token]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}",
                Location(column=position, source="<ir>"),
            )
        kind = match.lastgroup
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


def _unescape_string(literal: str) -> str:
    body = literal[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


def _parse_charset_body(body: str) -> CharSetAttr:
    """Parse the range syntax inside ``charset"..."``."""
    codes = []
    index = 0
    while index < len(body):
        char = body[index]
        if char == "\\":
            if body[index + 1] == "x":
                codes.append(int(body[index + 2 : index + 4], 16))
                index += 4
            else:
                codes.append(ord(body[index + 1]))
                index += 2
        else:
            codes.append(ord(char))
            index += 1
        # Range?  The printer only emits '-' unescaped as a range marker.
        if index < len(body) and body[index] == "-":
            index += 1
            if body[index] == "\\":
                if body[index + 1] == "x":
                    hi = int(body[index + 2 : index + 4], 16)
                    index += 4
                else:
                    hi = ord(body[index + 1])
                    index += 2
            else:
                hi = ord(body[index])
                index += 1
            lo = codes.pop()
            codes.extend(range(lo, hi + 1))
    return CharSetAttr(codes)


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str, context: Optional[Context] = None):
        self.tokens = _tokenize(text)
        self.index = 0
        self.context = context if context is not None else Context(allow_unregistered=True)

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self) -> _Token:
        return self.tokens[self.index]

    def _advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text!r}",
                Location(column=token.position, source="<ir>"),
            )
        return self._advance()

    def _at_punct(self, text: str) -> bool:
        token = self._peek()
        return token.kind == "punct" and token.text == text

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse_module(self) -> Operation:
        op = self.parse_op()
        self._expect("eof")
        op.verify()
        return op

    def parse_op(self) -> Operation:
        name_token = self._expect("ident")
        attributes = {}
        if self._at_punct("{"):
            attributes = self._parse_attr_dict()
        op = self.context.create_op(name_token.text, attributes=attributes)
        if self._at_punct("("):
            self._advance()
            while True:
                self._parse_region_into(op)
                if self._at_punct(","):
                    self._advance()
                    continue
                break
            self._expect("punct", ")")
        return op

    def _parse_region_into(self, op: Operation) -> None:
        region = op.add_region()
        self._expect("punct", "{")
        block = region.entry_block
        while not self._at_punct("}"):
            if self._peek().kind == "blocksep":
                self._advance()
                block = region.add_block()
                continue
            block.append(self.parse_op())
        self._expect("punct", "}")

    def _parse_attr_dict(self) -> dict:
        self._expect("punct", "{")
        attributes = {}
        while not self._at_punct("}"):
            key = self._expect("ident").text
            self._expect("punct", "=")
            attributes[key] = self._parse_attr_value()
            if self._at_punct(","):
                self._advance()
        self._expect("punct", "}")
        return attributes

    def _parse_attr_value(self) -> Attribute:
        token = self._peek()
        if token.kind == "ident" and token.text in ("true", "false"):
            self._advance()
            return BoolAttr(token.text == "true")
        if token.kind == "ident" and token.text == "char":
            self._advance()
            value_token = self._advance()
            if value_token.kind == "charlit":
                body = value_token.text[1:-1]
                if body.startswith("\\"):
                    body = body[1]
                return CharAttr(body)
            if value_token.kind == "hexnum":
                return CharAttr(int(value_token.text, 16))
            raise ParseError(
                f"malformed char attribute near {value_token.text!r}",
                Location(column=value_token.position, source="<ir>"),
            )
        if token.kind == "ident" and token.text == "charset":
            self._advance()
            literal = self._expect("string")
            # Strip only the quotes: charset escapes (\-, \\, \", \xNN) are
            # resolved by _parse_charset_body itself.
            return _parse_charset_body(literal.text[1:-1])
        if token.kind == "number":
            self._advance()
            return IntegerAttr(int(token.text))
        if token.kind == "hexnum":
            self._advance()
            return IntegerAttr(int(token.text, 16))
        if token.kind == "string":
            self._advance()
            return StringAttr(_unescape_string(token.text))
        if token.kind == "symbol":
            self._advance()
            return SymbolRefAttr(token.text[1:])
        if self._at_punct("["):
            self._advance()
            elements = []
            while not self._at_punct("]"):
                elements.append(self._parse_attr_value())
                if self._at_punct(","):
                    self._advance()
            self._expect("punct", "]")
            return ArrayAttr(elements)
        raise ParseError(
            f"cannot parse attribute value near {token.text!r}",
            Location(column=token.position, source="<ir>"),
        )


def parse_op(text: str, context: Optional[Context] = None) -> Operation:
    """Parse a single (possibly nested) operation from text."""
    return Parser(text, context).parse_module()
