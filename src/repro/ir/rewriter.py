"""Pattern-rewrite infrastructure.

This is the greedy pattern application driver the paper's
canonicalization-style transforms run on (MLIR's
``applyPatternsAndFoldGreedily`` in miniature): a set of
:class:`RewritePattern` s is applied to every operation under a root until
a fixpoint is reached or the iteration budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from .diagnostics import IRError
from .operation import Operation


class RewritePattern:
    """One local rewrite.

    Subclasses set :attr:`op_name` to the operation they anchor on (or
    ``None`` to be offered every op) and implement :meth:`match_and_rewrite`
    returning ``True`` when they changed the IR.  Patterns must only modify
    the matched op and its descendants/siblings — never ancestors — so the
    driver's traversal stays sound.
    """

    #: Anchor operation name, e.g. ``"regex.sub_regex"``; ``None`` = any op.
    op_name: Optional[str] = None

    #: Patterns with higher benefit run first on each op.
    benefit: int = 1

    def match_and_rewrite(self, op: Operation) -> bool:
        raise NotImplementedError

    @property
    def pattern_name(self) -> str:
        return type(self).__name__


@dataclass
class RewriteStatistics:
    """Counts gathered by one driver invocation."""

    iterations: int = 0
    total_rewrites: int = 0
    rewrites_by_pattern: dict = field(default_factory=dict)

    def record(self, pattern: RewritePattern) -> None:
        self.total_rewrites += 1
        name = pattern.pattern_name
        self.rewrites_by_pattern[name] = self.rewrites_by_pattern.get(name, 0) + 1


class GreedyRewriteDriver:
    """Applies patterns bottom-up until fixpoint."""

    def __init__(self, patterns: Iterable[RewritePattern], max_iterations: int = 64):
        self.patterns: List[RewritePattern] = sorted(
            patterns, key=lambda pattern: -pattern.benefit
        )
        if max_iterations < 1:
            raise IRError("max_iterations must be positive")
        self.max_iterations = max_iterations

    def _patterns_for(self, op: Operation) -> Sequence[RewritePattern]:
        return [
            pattern
            for pattern in self.patterns
            if pattern.op_name is None or pattern.op_name == op.name
        ]

    def apply(self, root: Operation) -> RewriteStatistics:
        """Rewrite everything nested under ``root`` (root itself included).

        Returns the statistics of the run; ``total_rewrites == 0`` means
        the IR was already in normal form.
        """
        stats = RewriteStatistics()
        for _ in range(self.max_iterations):
            stats.iterations += 1
            changed = False
            # Post-order so children are simplified before their parents,
            # which lets parent patterns assume canonical children.
            for op in list(root.walk_post_order()):
                if op is not root and op.parent_block is None:
                    continue  # erased by an earlier rewrite this sweep
                for pattern in self._patterns_for(op):
                    if pattern.match_and_rewrite(op):
                        stats.record(pattern)
                        changed = True
                        break  # op may have been replaced; move on
            if not changed:
                return stats
        return stats


def apply_patterns_greedily(
    root: Operation,
    patterns: Iterable[RewritePattern],
    max_iterations: int = 64,
) -> RewriteStatistics:
    """Convenience wrapper over :class:`GreedyRewriteDriver`."""
    return GreedyRewriteDriver(patterns, max_iterations=max_iterations).apply(root)
