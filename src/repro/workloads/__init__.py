"""Synthetic AutomataZoo-style workloads (Protomata, Brill, ×4 variants)."""

from . import brill, protomata
from .alternation import alternate, sample_and_alternate
from .sampler import sample_match, sample_match_for
from .suite import (
    BENCHMARK_NAMES,
    Benchmark,
    benchmark_from_files,
    load_all,
    load_benchmark,
    load_patterns_file,
)

__all__ = [
    "BENCHMARK_NAMES",
    "Benchmark",
    "benchmark_from_files",
    "load_patterns_file",
    "alternate",
    "brill",
    "load_all",
    "load_benchmark",
    "protomata",
    "sample_and_alternate",
    "sample_match",
    "sample_match_for",
]
