"""Benchmark suite assembly: the four workloads of §6.

``load_benchmark`` builds a scaled-down but structurally faithful
version of Protomata, Brill, Protomata4 and Brill4: ``num_res`` REs and
an input stream cut into 500-byte chunks, shared by all REs of the
benchmark (as in the paper, where every RE scans the same data).

The paper runs 200 REs over thousands of chunks on an FPGA; a pure
Python cycle simulator cannot, so the defaults are small and every
benchmark harness exposes environment knobs to scale up
(``REPRO_BENCH_RES``, ``REPRO_BENCH_CHUNKS`` — see
``benchmarks/common.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..arch.simulator import DEFAULT_CHUNK_BYTES, split_chunks
from . import brill, protomata
from .alternation import sample_and_alternate

BENCHMARK_NAMES = ("protomata", "brill", "protomata4", "brill4")


@dataclass
class Benchmark:
    """A named set of REs plus the chunked input stream they scan."""

    name: str
    patterns: List[str]
    chunks: List[bytes] = field(repr=False)
    seed: int = 2025

    @property
    def is_alternate(self) -> bool:
        return self.name.endswith("4")


def _base_generator(name: str):
    if name.startswith("protomata"):
        return protomata
    if name.startswith("brill"):
        return brill
    raise ValueError(
        f"unknown benchmark {name!r}; expected one of {BENCHMARK_NAMES}"
    )


def load_benchmark(
    name: str,
    num_res: int = 12,
    num_chunks: int = 2,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    seed: int = 2025,
) -> Benchmark:
    """Build one of the four benchmarks at the requested scale."""
    name = name.lower()
    generator = _base_generator(name)
    if name.endswith("4"):
        # Sample a larger pool and alternate 4 at a time (paper §6).
        pool = generator.generate_patterns(num_res * 4, seed=seed)
        patterns = sample_and_alternate(pool, num_res, group_size=4, seed=seed)
    else:
        patterns = generator.generate_patterns(num_res, seed=seed)
    stream = generator.generate_input(
        patterns if not name.endswith("4") else pool,
        length=num_chunks * chunk_bytes,
        seed=seed,
    )
    chunks = split_chunks(stream, chunk_bytes)[:num_chunks]
    return Benchmark(name=name, patterns=patterns, chunks=chunks, seed=seed)


def load_patterns_file(path) -> List[str]:
    """Read an AutomataZoo-style pattern file: one RE per line, blank
    lines and ``#`` comments ignored."""
    patterns: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.rstrip("\n")
            if not stripped or stripped.lstrip().startswith("#"):
                continue
            patterns.append(stripped)
    return patterns


def benchmark_from_files(
    patterns_path,
    input_path,
    name: str = "custom",
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    num_chunks: int = None,
) -> Benchmark:
    """Build a benchmark from user-provided pattern and input files."""
    patterns = load_patterns_file(patterns_path)
    if not patterns:
        raise ValueError(f"no patterns in {patterns_path}")
    with open(input_path, "rb") as handle:
        data = handle.read()
    chunks = split_chunks(data, chunk_bytes)
    if num_chunks is not None:
        chunks = chunks[:num_chunks]
    return Benchmark(name=name, patterns=patterns, chunks=chunks)


def load_all(
    num_res: int = 12,
    num_chunks: int = 2,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    seed: int = 2025,
) -> List[Benchmark]:
    return [
        load_benchmark(name, num_res, num_chunks, chunk_bytes, seed)
        for name in BENCHMARK_NAMES
    ]
