"""Synthetic Brill benchmark (AutomataZoo substitution).

AutomataZoo's Brill workload encodes the contextual rules of the Brill
part-of-speech tagger as patterns over text: short sequences of literal
words and word alternatives separated by spaces, with occasional
wildcard word slots.  This generator emits structurally equivalent REs
over a small English-like lexicon plus input streams of synthetic
sentences from the same lexicon.

Compared to Protomata, Brill REs are literal-heavy with shallow
fan-out, so they stress code layout (long match chains) more than
enumeration — which is why the paper sees smaller architectural gains
on Brill than on Protomata (Figs. 14–15).
"""

from __future__ import annotations

import random
from typing import List

LEXICON = (
    "the a an this that is was are were be been has have had do does "
    "did will would can could may might must not no yes and or but if "
    "when then than as of in on at by for with from to into over under "
    "time year day man woman world life hand part child eye place work "
    "week case point company number group problem fact right big high "
    "small large next early young important few public bad same able"
).split()


def _word(rng: random.Random) -> str:
    return rng.choice(LEXICON)


def generate_pattern(rng: random.Random, tokens: int = None) -> str:
    """One Brill-style contextual rule RE."""
    if tokens is None:
        tokens = rng.randint(2, 4)
    parts: List[str] = []
    for _ in range(tokens):
        roll = rng.random()
        if roll < 0.5:
            parts.append(_word(rng))
        elif roll < 0.82:
            alternatives = rng.sample(LEXICON, rng.randint(2, 4))
            parts.append("(" + "|".join(alternatives) + ")")
        else:
            low = rng.randint(2, 4)
            high = low + rng.randint(1, 4)
            parts.append(f"[a-z]{{{low},{high}}}")
    return " ".join(parts)


def generate_patterns(count: int, seed: int = 2025) -> List[str]:
    rng = random.Random(seed)
    return [generate_pattern(rng) for _ in range(count)]


def generate_input(
    patterns: List[str],
    length: int,
    seed: int = 2025,
    plant_rate: float = 0.003,
) -> str:
    """Synthetic sentences, with genuine rule matches planted."""
    from .sampler import sample_match_for

    rng = random.Random(seed ^ 0xB211)
    pieces: List[str] = []
    produced = 0
    while produced < length:
        if patterns and rng.random() < plant_rate * 30:
            planted = sample_match_for(rng.choice(patterns), rng)
            pieces.append(planted + " ")
            produced += len(planted) + 1
        sentence_words = [_word(rng) for _ in range(rng.randint(5, 12))]
        sentence = " ".join(sentence_words) + ". "
        pieces.append(sentence)
        produced += len(sentence)
    return "".join(pieces)[:length]
