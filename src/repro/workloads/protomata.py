"""Synthetic Protomata benchmark (AutomataZoo substitution).

AutomataZoo's Protomata derives its patterns from PROSITE protein
motifs: sequences of residue constraints over the 20-letter amino-acid
alphabet — exact residues, residue classes (``[LIVM]``), bounded gaps
(``x(2,4)`` in PROSITE, ``.{2,4}`` here) and occasional repetitions.
This generator emits structurally equivalent REs and matching input
streams (random residue sequences with genuine motif instances planted
at a configurable rate), seeded for reproducibility.

These REs drive high enumeration loads: every input position restarts
the motif through the implicit ``.*`` prefix, and residue classes fan
out split chains — the behaviour that separates the architecture
configurations in §6.2.
"""

from __future__ import annotations

import random
from typing import List

from .sampler import sample_match_for

#: The 20 standard amino acids.
AMINO_ACIDS = "ACDEFGHIKLMNPQRSTVWY"

#: Residue classes that actually occur in PROSITE-style motifs.
_COMMON_CLASSES = (
    "LIVM", "LIVMF", "FYW", "DE", "KR", "ST", "AG", "DENQ", "ILVF",
    "HKR", "FYWH", "NQST", "SAG", "GASTC", "CMLIV", "DEKRH", "LIVMAT",
)


def _class(rng: random.Random) -> str:
    members = rng.choice(_COMMON_CLASSES)
    if rng.random() < 0.15:
        return f"[^{members}]"
    return f"[{members}]"


def generate_pattern(rng: random.Random, elements: int = None) -> str:
    """One PROSITE-style motif RE.

    Motifs lean on residue classes and bounded gaps — the constructs
    that keep many NFA paths alive simultaneously and give the
    benchmark its enumeration pressure (AutomataZoo's Protomata set is
    the paper's high-parallelism workload).
    """
    if elements is None:
        elements = rng.randint(10, 16)
    parts: List[str] = []
    for index in range(elements):
        roll = rng.random()
        if index == 0 or roll < 0.42:
            # PROSITE motifs typically open with a residue class.
            parts.append(_class(rng))
        elif roll < 0.68:
            # x(m,n) gaps: the main source of simultaneously live paths.
            low = rng.randint(1, 3)
            high = low + rng.randint(1, 4)
            parts.append(f".{{{low},{high}}}")
        elif roll < 0.82:
            parts.append(rng.choice(AMINO_ACIDS))
        elif roll < 0.92:
            low = rng.randint(1, 2)
            high = low + rng.randint(1, 2)
            parts.append(f"{_class(rng)}{{{low},{high}}}")
        else:
            # Short alternative sub-motifs, e.g. (G[DE]|A[KR]).
            left = rng.choice(AMINO_ACIDS) + _class(rng)
            right = rng.choice(AMINO_ACIDS) + _class(rng)
            parts.append(f"({left}|{right})")
    return "".join(parts)


def generate_patterns(count: int, seed: int = 2025) -> List[str]:
    """The benchmark's RE set (the paper samples 200 per benchmark)."""
    rng = random.Random(seed)
    return [generate_pattern(rng) for _ in range(count)]


def generate_input(
    patterns: List[str],
    length: int,
    seed: int = 2025,
    plant_rate: float = 0.004,
) -> str:
    """A residue stream with motif instances planted at ``plant_rate``
    (expected plants per character)."""
    rng = random.Random(seed ^ 0x5EED)
    pieces: List[str] = []
    produced = 0
    while produced < length:
        if patterns and rng.random() < plant_rate * 40:
            planted = sample_match_for(rng.choice(patterns), rng)
            pieces.append(planted)
            produced += len(planted)
        run_length = rng.randint(20, 60)
        run = "".join(rng.choice(AMINO_ACIDS) for _ in range(run_length))
        pieces.append(run)
        produced += run_length
    return "".join(pieces)[:length]
