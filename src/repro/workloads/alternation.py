"""The paper's *alternate* benchmark construction (§6).

"The alternate one reflects the scenarios in which, among a set of REs,
it is essential to have at least one of them matching to trigger an
acceptance behavior.  For this purpose, we randomly sample 800 REs from
each benchmark and alternate 4 at a time in a single RE using the |
operator, resulting in 200 REs, called Protomata4 and Brill4."
"""

from __future__ import annotations

import random
from typing import List, Sequence


def alternate(patterns: Sequence[str], group_size: int = 4) -> List[str]:
    """OR consecutive groups of ``group_size`` patterns together.

    ``len(patterns)`` must be a multiple of ``group_size`` (the paper
    samples exactly ``200 * 4`` REs).
    """
    if group_size < 1:
        raise ValueError("group_size must be positive")
    if len(patterns) % group_size:
        raise ValueError(
            f"{len(patterns)} patterns do not group into {group_size}s"
        )
    grouped = []
    for start in range(0, len(patterns), group_size):
        grouped.append("|".join(patterns[start : start + group_size]))
    return grouped


def sample_and_alternate(
    patterns: Sequence[str],
    result_count: int,
    group_size: int = 4,
    seed: int = 2025,
) -> List[str]:
    """Randomly sample ``result_count * group_size`` REs and alternate
    them, as the paper does (800 sampled → 200 alternated)."""
    rng = random.Random(seed)
    needed = result_count * group_size
    if len(patterns) >= needed:
        chosen = rng.sample(list(patterns), needed)
    else:  # sample with replacement when the pool is scaled down
        chosen = [rng.choice(list(patterns)) for _ in range(needed)]
    return alternate(chosen, group_size)
