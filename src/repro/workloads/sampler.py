"""Sampling strings that match a pattern (for planting benchmark hits).

The benchmark input generators plant genuine matches into their random
streams so the acceptance paths of the architecture get exercised; this
module draws a random member of a pattern's language by walking its AST.
"""

from __future__ import annotations

import random
from typing import List

from ..frontend import ast_nodes as ast
from ..frontend.parser import parse_regex

#: Bound used when sampling an unbounded quantifier.
_UNBOUNDED_EXTRA = 2


def _sample_atom(atom: ast.Atom, rng: random.Random, out: List[int]) -> None:
    if isinstance(atom, ast.Char):
        out.append(atom.code)
    elif isinstance(atom, ast.AnyChar):
        out.append(rng.randrange(0x20, 0x7F))
    elif isinstance(atom, ast.CharClass):
        if atom.negated:
            excluded = set(atom.members)
            candidates = [c for c in range(0x20, 0x7F) if c not in excluded]
            if not candidates:
                candidates = [c for c in range(256) if c not in excluded]
            out.append(rng.choice(candidates))
        else:
            out.append(rng.choice(atom.members))
    elif isinstance(atom, ast.SubRegex):
        _sample_alternation(atom.body, rng, out)
    elif isinstance(atom, ast.Dollar):
        pass  # zero-width
    else:  # pragma: no cover - the AST is closed
        raise TypeError(f"cannot sample {atom!r}")


def _sample_piece(piece: ast.Piece, rng: random.Random, out: List[int]) -> None:
    minimum, maximum = piece.min, piece.max
    if maximum == ast.UNBOUNDED:
        maximum = minimum + _UNBOUNDED_EXTRA
    count = rng.randint(minimum, maximum)
    for _ in range(count):
        _sample_atom(piece.atom, rng, out)


def _sample_alternation(
    alternation: ast.Alternation, rng: random.Random, out: List[int]
) -> None:
    branch = rng.choice(alternation.branches)
    for piece in branch.pieces:
        _sample_piece(piece, rng, out)


def sample_match(pattern: ast.Pattern, rng: random.Random) -> str:
    """A random string in the pattern's language (body only: the caller
    supplies surrounding context exploiting the implicit ``.*``)."""
    out: List[int] = []
    _sample_alternation(pattern.root, rng, out)
    return "".join(chr(code) for code in out)


def sample_match_for(pattern_text: str, rng: random.Random) -> str:
    """Parse + sample in one step."""
    return sample_match(parse_regex(pattern_text), rng)
