"""Functional golden-model execution of Cicero programs."""

from .thompson import MatchResult, ThompsonVM, VMStatistics, run_program

__all__ = ["MatchResult", "ThompsonVM", "VMStatistics", "run_program"]
