"""Functional golden-model execution of Cicero programs."""

from .streaming import StreamingMatcher, StreamingMultiMatcher
from .thompson import MatchResult, ThompsonVM, VMStatistics, run_program

__all__ = [
    "MatchResult",
    "StreamingMatcher",
    "StreamingMultiMatcher",
    "ThompsonVM",
    "VMStatistics",
    "run_program",
]
