"""Incremental (streaming) execution of Cicero programs.

The breadth-first VM's entire between-position state is its *frontier*
— the deduplicated set of work-instruction PCs that survived the last
consumed byte — plus the executed-step count the budget accounting
carries.  That makes true streaming a state-carry refactor rather than
a new machine: :class:`StreamingMatcher.feed` runs the exact
:meth:`~repro.vm.thompson.ThompsonVM._run_fast` inner loop over one
chunk with ``has_char=True`` for every byte, and :meth:`finish` runs
the single end-of-input position (``has_char=False``) where ``ACCEPT``
fires.  The concatenation of any chunk split therefore performs the
same per-position transitions, in the same order, with the same
per-position budget checks, as one-shot execution over the joined
input (property-tested against ``run_reference`` for arbitrary
splits, including 1-byte chunks).

Early settlement mirrors the one-shot loop: ``ACCEPT_PARTIAL`` settles
``True`` at its absolute position mid-chunk; an empty frontier settles
``False`` immediately (no suffix can revive a dead enumeration).  Once
settled, further ``feed`` calls are no-ops returning the verdict.

Lazy-DFA acceleration (PR 8) streams the same way: a
:class:`~repro.prefilter.lazydfa.LazyDFA` state *is* the frozenset of
work PCs the VM frontier would hold, so the carried state is one
integer, and a mid-stream :class:`~repro.prefilter.lazydfa.LazyDFABlowup`
degrades permanently to the VM by seeding the frontier from the
current DFA state's PC set — continuing at the current byte without
re-reading history.  While the DFA holds state 0 (the entry closure),
runs of bytes whose transition provably self-loops on state 0 are
skipped with a compiled byte-class search (the streaming analog of the
PR 8 chunk prefilter; sound because a self-loop byte can neither match
nor change state).  Step budgets follow
:class:`~repro.prefilter.lazydfa.LazyDFAMatcher` semantics: DFA-mode
bytes cost no VM steps (the DFA's own bound is ``max_states``); after
a fallback the VM budget applies from the fallback point onward.
"""

from __future__ import annotations

import re
from typing import FrozenSet, List, Optional, Set, Union

from ..isa.instructions import Opcode
from ..isa.program import Program
from ..runtime.errors import VMStepBudgetError
from .thompson import MatchResult, ThompsonVM, _as_bytes

__all__ = ["StreamingMatcher", "StreamingMultiMatcher"]


class StreamingMatcher:
    """Single-pattern matcher fed arbitrary chunks of one logical input.

    Usage::

        matcher = StreamingMatcher(program)
        for chunk in source:
            verdict = matcher.feed(chunk)
            if verdict is not None:      # settled early
                break
        else:
            verdict = matcher.finish()   # end-of-input position

    ``feed`` returns ``None`` while the verdict is still open and the
    settled :class:`MatchResult` as soon as it is decided; positions in
    results are absolute offsets into the concatenated input, exactly
    as one-shot :meth:`ThompsonVM.run` reports them.

    ``use_dfa=True`` routes chunks through a lazy DFA bounded by
    ``max_dfa_states`` with a permanent VM fallback on blowup (never a
    correctness event).  ``vm``/``dfa`` allow sharing prebuilt engines
    across matchers for the same program (the service does this so a
    thousand concurrent streams pay one dispatch-table build).
    """

    def __init__(
        self,
        program: Program,
        *,
        max_steps: Optional[int] = None,
        use_dfa: bool = False,
        max_dfa_states: Optional[int] = None,
        vm: Optional[ThompsonVM] = None,
        dfa=None,
    ):
        self.program = program
        self.vm = vm if vm is not None else ThompsonVM(program)
        self.max_steps = max_steps
        self._opcodes = self.vm._opcodes
        self._operands = self.vm._operands
        self._successors = self.vm._successors
        self._frontier: List[int] = list(self.vm._entry)
        self._executed = 0
        self._consumed = 0
        self._result: Optional[MatchResult] = None
        self._error: Optional[BaseException] = None
        self._finished = False
        self.dfa_fallbacks = 0

        self._dfa = None
        self._dfa_state = 0
        self._skip_ready = False
        self._skip_re: Optional[re.Pattern] = None
        self._skip_all = False
        if use_dfa:
            from ..prefilter.lazydfa import DEFAULT_MAX_DFA_STATES, LazyDFA

            if dfa is not None:
                self._dfa = dfa
            else:
                self._dfa = LazyDFA(
                    program,
                    max_states=(
                        max_dfa_states
                        if max_dfa_states is not None
                        else DEFAULT_MAX_DFA_STATES
                    ),
                    vm=self.vm,
                )

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def settled(self) -> bool:
        """True once the verdict can no longer change."""
        return self._result is not None or self._error is not None

    @property
    def result(self) -> Optional[MatchResult]:
        """The settled verdict, or ``None`` while still open."""
        return self._result

    @property
    def bytes_consumed(self) -> int:
        return self._consumed

    @property
    def accelerated(self) -> bool:
        """True while chunks are walking the lazy DFA."""
        return self._dfa is not None

    def _settle(self, result: MatchResult) -> MatchResult:
        self._result = result
        return result

    def _raise_settled_error(self) -> None:
        if self._error is not None:
            raise self._error

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def feed(self, chunk: Union[str, bytes]) -> Optional[MatchResult]:
        """Consume one chunk; returns the verdict iff it settled."""
        if self._finished:
            raise RuntimeError("feed() after finish() on StreamingMatcher")
        self._raise_settled_error()
        if self._result is not None:
            return self._result
        data = chunk if isinstance(chunk, bytes) else _as_bytes(chunk)
        if not data:
            return None
        if self._dfa is not None:
            return self._feed_dfa(data)
        return self._feed_vm(data, 0)

    def finish(self) -> MatchResult:
        """Process the end-of-input position and return the verdict."""
        self._raise_settled_error()
        if self._result is not None:
            self._finished = True
            return self._result
        self._finished = True
        if self._dfa is not None:
            if self._dfa._accept_end[self._dfa_state]:
                return self._settle(MatchResult(True, self._consumed))
            return self._settle(MatchResult(False, None))

        opcodes = self._opcodes
        ACCEPT = int(Opcode.ACCEPT)
        ACCEPT_PARTIAL = int(Opcode.ACCEPT_PARTIAL)
        visited: Set[int] = set()
        for pc in self._frontier:
            if pc in visited:
                continue
            visited.add(pc)
            opcode = opcodes[pc]
            if opcode == ACCEPT_PARTIAL or opcode == ACCEPT:
                return self._settle(MatchResult(True, self._consumed))
            # NOT_MATCH / MATCH / MATCH_ANY all require a character.
        self._frontier = []
        if self.max_steps is not None:
            self._executed += len(visited)
            if self._executed > self.max_steps:
                return self._budget_error()
        return self._settle(MatchResult(False, None))

    # ------------------------------------------------------------------
    # VM path
    # ------------------------------------------------------------------
    def _budget_error(self):
        error = VMStepBudgetError(
            self._executed, self.max_steps, self.program.source_pattern
        )
        self._error = error
        raise error

    def _feed_vm(self, data: bytes, start: int) -> Optional[MatchResult]:
        opcodes = self._opcodes
        operands = self._operands
        successors = self._successors
        max_steps = self.max_steps

        ACCEPT = int(Opcode.ACCEPT)
        ACCEPT_PARTIAL = int(Opcode.ACCEPT_PARTIAL)
        MATCH_ANY = int(Opcode.MATCH_ANY)
        NOT_MATCH = int(Opcode.NOT_MATCH)

        frontier = self._frontier
        base = self._consumed - start
        for index in range(start, len(data)):
            if not frontier:
                self._frontier = frontier
                self._consumed = base + len(data)
                return self._settle(MatchResult(False, None))
            char = data[index]
            visited: Set[int] = set()
            next_roots: Set[int] = set()
            worklist = frontier
            while worklist:
                pc = worklist.pop()
                if pc in visited:
                    continue
                visited.add(pc)
                opcode = opcodes[pc]
                if opcode == NOT_MATCH:
                    if char != operands[pc]:
                        worklist.extend(successors[pc])
                elif opcode == MATCH_ANY:
                    next_roots.add(pc)
                elif opcode == ACCEPT_PARTIAL:
                    self._frontier = []
                    self._consumed = base + index
                    return self._settle(MatchResult(True, base + index))
                elif opcode == ACCEPT:
                    pass  # needs end-of-input; dead with a byte in hand
                else:  # MATCH
                    if char == operands[pc]:
                        next_roots.add(pc)
            if max_steps is not None:
                self._executed += len(visited)
                if self._executed > max_steps:
                    self._frontier = []
                    self._consumed = base + index + 1
                    return self._budget_error()
            frontier = []
            for root in next_roots:
                frontier.extend(successors[root])
        self._frontier = frontier
        self._consumed = base + len(data)
        if not frontier:
            return self._settle(MatchResult(False, None))
        return None

    # ------------------------------------------------------------------
    # Lazy-DFA path
    # ------------------------------------------------------------------
    def _prepare_skip(self) -> None:
        """Precompute which raw bytes self-loop on the entry state.

        Builds every state-0 transition (at most ``num_classes`` rows —
        bounded by the distinct operand bytes plus one residual class)
        and compiles a byte-class regex matching the first *non*
        self-loop byte.  While the DFA sits in state 0, everything
        before that byte can be skipped at C speed: a self-loop byte
        cannot fire a match (its transition is state 0, not the match
        sentinel) and cannot change state, by construction.
        """
        self._skip_ready = True
        dfa = self._dfa
        transitions = []
        for byte_class in range(dfa.num_classes):
            next_id = dfa._rows[0][byte_class]
            if next_id == -3:  # _UNBUILT
                next_id = dfa._build_transition(0, byte_class)
            transitions.append(next_id)
        class_table = dfa._class_table
        stop_bytes = [
            byte for byte in range(256) if transitions[class_table[byte]] != 0
        ]
        if len(stop_bytes) == 256:
            return  # nothing skippable
        if not stop_bytes:
            self._skip_all = True  # state 0 self-loops on every byte
            return
        self._skip_re = re.compile(
            b"[" + b"".join(re.escape(bytes([b])) for b in stop_bytes) + b"]"
        )

    def _feed_dfa(self, data: bytes) -> Optional[MatchResult]:
        from ..prefilter.lazydfa import LazyDFABlowup

        dfa = self._dfa
        state_id = self._dfa_state
        index = 0
        try:
            if not self._skip_ready:
                self._prepare_skip()
            rows = dfa._rows
            build = dfa._build_transition
            translated = data.translate(dfa._class_table)
            length = len(data)
            while index < length:
                if state_id == 0:
                    if self._skip_all:
                        index = length
                        break
                    if self._skip_re is not None:
                        found = self._skip_re.search(data, index)
                        if found is None:
                            index = length
                            break
                        index = found.start()
                byte_class = translated[index]
                next_id = rows[state_id][byte_class]
                if next_id < 0:
                    if next_id == -3:  # _UNBUILT
                        next_id = build(state_id, byte_class)
                    if next_id == -2:  # _MATCHED
                        position = self._consumed + index
                        self._consumed = position
                        self._dfa_state = state_id
                        return self._settle(MatchResult(True, position))
                    if next_id == -1:  # _DEAD
                        self._consumed += length
                        return self._settle(MatchResult(False, None))
                state_id = next_id
                index += 1
            self._dfa_state = state_id
            self._consumed += length
            return None
        except LazyDFABlowup:
            # Permanent degradation: the DFA state's PC set is exactly
            # the VM frontier at this position — resume byte-for-byte
            # from the chunk byte whose transition blew the budget.
            self.dfa_fallbacks += 1
            self._frontier = list(dfa._states[state_id])
            self._dfa = None
            self._dfa_state = 0
            self._consumed += index
            return self._feed_vm(data, index)


class StreamingMultiMatcher:
    """Multi-pattern streaming twin over :class:`MultiMatchVM`.

    Carries the frontier *and* the matched-id set across chunks;
    settles early once every target id has been seen (or the frontier
    dies), mirroring the one-shot loop's top-of-position early exit.
    ``candidates`` narrows the target set exactly as
    :meth:`MultiMatchVM.run` does for the Aho-Corasick prefilter.
    """

    def __init__(
        self,
        multi_program,
        *,
        max_steps: Optional[int] = None,
        candidates: Optional[FrozenSet[int]] = None,
        vm=None,
    ):
        from ..multimatch.vm import MultiMatchVM

        self.multi_program = multi_program
        self.vm = vm if vm is not None else MultiMatchVM(multi_program)
        self.max_steps = max_steps
        self._opcodes = self.vm._opcodes
        self._operands = self.vm._operands
        self._successors = self.vm._successors
        self._targets = (
            self.vm._all_ids
            if candidates is None
            else frozenset(candidates) & self.vm._all_ids
        )
        self._matched: Set[int] = set()
        self._frontier: List[int] = list(self.vm._entry)
        self._executed = 0
        self._consumed = 0
        self._settled = False
        self._error: Optional[BaseException] = None
        self._finished = False

    @property
    def settled(self) -> bool:
        return self._settled

    @property
    def bytes_consumed(self) -> int:
        return self._consumed

    @property
    def matched_ids(self) -> FrozenSet[int]:
        """Ids matched so far (monotone; final after :meth:`finish`)."""
        return frozenset(self._matched)

    def _result(self):
        from ..multimatch.vm import MultiMatchResult

        return MultiMatchResult(
            matched_ids=frozenset(self._matched),
            patterns=dict(self.multi_program.patterns),
        )

    def _budget_error(self):
        error = VMStepBudgetError(self._executed, self.max_steps)
        self._error = error
        raise error

    def feed(self, chunk: Union[str, bytes]):
        """Consume one chunk; returns the result iff enumeration settled."""
        if self._finished:
            raise RuntimeError("feed() after finish() on StreamingMultiMatcher")
        if self._error is not None:
            raise self._error
        if self._settled:
            return self._result()
        data = chunk if isinstance(chunk, bytes) else _as_bytes(chunk)
        if not data:
            return None

        opcodes = self._opcodes
        operands = self._operands
        successors = self._successors
        max_steps = self.max_steps
        matched = self._matched
        targets = self._targets

        ACCEPT = int(Opcode.ACCEPT)
        ACCEPT_PARTIAL = int(Opcode.ACCEPT_PARTIAL)
        MATCH_ANY = int(Opcode.MATCH_ANY)
        NOT_MATCH = int(Opcode.NOT_MATCH)

        frontier = self._frontier
        base = self._consumed
        for index in range(len(data)):
            if not frontier or matched >= targets:
                self._frontier = frontier
                self._consumed = base + index
                self._settled = True
                return self._result()
            char = data[index]
            visited: Set[int] = set()
            next_roots: Set[int] = set()
            worklist = frontier
            while worklist:
                pc = worklist.pop()
                if pc in visited:
                    continue
                visited.add(pc)
                opcode = opcodes[pc]
                if opcode == NOT_MATCH:
                    if char != operands[pc]:
                        worklist.extend(successors[pc])
                elif opcode == MATCH_ANY:
                    next_roots.add(pc)
                elif opcode == ACCEPT_PARTIAL:
                    matched.add(operands[pc])
                elif opcode == ACCEPT:
                    pass  # needs end-of-input
                else:  # MATCH
                    if char == operands[pc]:
                        next_roots.add(pc)
            if max_steps is not None:
                self._executed += len(visited)
                if self._executed > max_steps:
                    self._frontier = []
                    self._consumed = base + index + 1
                    return self._budget_error()
            frontier = []
            for root in next_roots:
                frontier.extend(successors[root])
        self._frontier = frontier
        self._consumed = base + len(data)
        if not frontier or matched >= targets:
            self._settled = True
            return self._result()
        return None

    def finish(self):
        """Process end-of-input (where ``ACCEPT(id)`` fires); final result."""
        if self._error is not None:
            raise self._error
        self._finished = True
        if self._settled:
            return self._result()

        opcodes = self._opcodes
        operands = self._operands
        ACCEPT = int(Opcode.ACCEPT)
        ACCEPT_PARTIAL = int(Opcode.ACCEPT_PARTIAL)
        if self._frontier and not (self._matched >= self._targets):
            visited: Set[int] = set()
            for pc in self._frontier:
                if pc in visited:
                    continue
                visited.add(pc)
                opcode = opcodes[pc]
                if opcode == ACCEPT_PARTIAL or opcode == ACCEPT:
                    self._matched.add(operands[pc])
            if self.max_steps is not None:
                self._executed += len(visited)
                if self._executed > self.max_steps:
                    return self._budget_error()
        self._frontier = []
        self._settled = True
        return self._result()
