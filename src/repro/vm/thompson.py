"""Functional (timing-free) executor for Cicero programs.

A breadth-first Thompson/Pike-style virtual machine: it advances a
deduplicated set of program counters over the input one character at a
time, exactly the enumeration the hardware performs, but without any
micro-architectural modelling.  It serves as the *golden model*: the
cycle-level simulator must return the same verdict for every program,
input, and configuration (tested property), and compiled programs must
agree with Python's :mod:`re` on generated corpora.

Instruction semantics (paper Table 1):

* ``SPLIT``/``JMP`` are input-independent ε-moves.
* ``NOT_MATCH(c)`` is an ε-move *conditioned on the current character*:
  the thread continues (without consuming) iff the character exists and
  differs from ``c``.
* ``MATCH(c)``/``MATCH_ANY`` consume one character or kill the thread.
* ``ACCEPT`` matches iff the whole input was consumed; ``ACCEPT_PARTIAL``
  matches immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Union

from ..isa.instructions import Opcode
from ..isa.program import Program
from ..runtime.encoding import as_input_bytes
from ..runtime.errors import VMStepBudgetError


@dataclass
class VMStatistics:
    """Enumeration-shape statistics (the "ideal" parallelism profile)."""

    instructions_executed: int = 0
    threads_spawned: int = 0
    threads_killed: int = 0
    positions_processed: int = 0
    max_frontier: int = 0
    #: Live thread count after processing each input position.
    frontier_sizes: List[int] = field(default_factory=list)


@dataclass(frozen=True)
class MatchResult:
    matched: bool
    #: Input position at which acceptance fired (None when no match).
    position: Optional[int] = None

    def __bool__(self) -> bool:
        return self.matched


def _as_bytes(text: Union[str, bytes]) -> bytes:
    """Normalize input to bytes.

    Raises a typed :class:`~repro.runtime.errors.InputEncodingError` for
    non-latin-1 text instead of leaking a raw ``UnicodeEncodeError``.
    """
    return as_input_bytes(text, what="input text")


class ThompsonVM:
    """Breadth-first executor over one program.

    Two execution paths share the instruction arrays:

    * :meth:`run` — the **fast path**.  At program load the ε-closure of
      every entry point (``SPLIT``/``JMP`` chains folded down to their
      *work* instructions) is precomputed once, so the per-position loop
      touches only instructions that inspect the input; live threads are
      deduplicated per position, bounding the work at
      O(program × text).  ``bytes`` input skips encoding entirely.
    * :meth:`run_reference` / :meth:`run_with_stats` — the original
      instruction-at-a-time interpreter, kept verbatim as the golden
      reference the fast path is property-tested against (and as the
      only path that can attribute per-instruction statistics).
    """

    def __init__(self, program: Program):
        self.program = program
        # Split into parallel arrays once; the hot loop then avoids
        # attribute lookups on Instruction objects.
        self._opcodes = [int(instruction.opcode) for instruction in program]
        self._operands = [instruction.operand for instruction in program]
        self._build_dispatch_tables()

    # ------------------------------------------------------------------
    # Load-time precomputation (the fast path's dispatch tables)
    # ------------------------------------------------------------------
    def _closure_of(self, root: int) -> tuple:
        """Work instructions reachable from ``root`` via ε-moves only.

        ``SPLIT`` and ``JMP`` are input-independent, so the set of
        match/accept/``NOT_MATCH`` instructions they lead to is a static
        property of the program; cycles (ε-loops) terminate through the
        visited set exactly as the interpreter's per-position dedup does.
        """
        opcodes, operands = self._opcodes, self._operands
        split, jmp = int(Opcode.SPLIT), int(Opcode.JMP)
        seen: Set[int] = set()
        work: List[int] = []
        stack = [root]
        while stack:
            pc = stack.pop()
            if pc in seen:
                continue
            seen.add(pc)
            opcode = opcodes[pc]
            if opcode == split:
                stack.append(pc + 1)
                stack.append(operands[pc])
            elif opcode == jmp:
                stack.append(operands[pc])
            else:
                work.append(pc)
        return tuple(work)

    def _build_dispatch_tables(self) -> None:
        # ``_successors[pc]`` is the precomputed ε-closure of ``pc + 1``
        # for every instruction that can continue there (matches and
        # NOT_MATCH); ``_entry`` is the closure of address 0.  Program
        # validation guarantees those instructions never sit at the last
        # address, so ``pc + 1`` always exists.
        opcodes = self._opcodes
        consumers = (int(Opcode.MATCH), int(Opcode.MATCH_ANY), int(Opcode.NOT_MATCH))
        self._successors: List[Optional[tuple]] = [None] * len(opcodes)
        for pc, opcode in enumerate(opcodes):
            if opcode in consumers:
                self._successors[pc] = self._closure_of(pc + 1)
        self._entry: tuple = self._closure_of(0)

    def run(
        self,
        text: Union[str, bytes],
        max_steps: Optional[int] = None,
        tracer=None,
        metrics=None,
        profile=None,
    ) -> MatchResult:
        """Execute the program over ``text``; stops at the first match.

        ``max_steps`` bounds the executed instruction count (checked per
        input position, so the overhead on the hot loop is negligible);
        exceeding it raises a typed
        :class:`~repro.runtime.errors.VMStepBudgetError` instead of
        burning CPU on a pathological pattern × input combination.

        ``tracer`` (a :class:`repro.observability.Tracer`) wraps the run
        in a ``vm.run`` span recording steps, ε-closure table hits and
        dedup suppressions; ``metrics`` (a
        :class:`repro.observability.MetricsRegistry`) accumulates the
        same counts into ``repro_vm_*`` counters; ``profile`` (a
        :class:`repro.observability.VMProfile` built over this program)
        additionally attributes every step to its program counter — the
        per-PC counts sum to exactly the ``steps`` total (tested
        conservation property).  With none of the three, the dispatch
        lands on the historical uninstrumented loop — the disabled-path
        overhead is one ``is None`` check per run.
        """
        data = text if isinstance(text, bytes) else _as_bytes(text)
        if tracer is None and metrics is None and profile is None:
            return self._run_fast(data, max_steps)
        if (
            profile is None
            and (tracer is None or not tracer.enabled)
            and (metrics is None or not metrics.enabled)
        ):
            return self._run_fast(data, max_steps)
        return self._run_fast_instrumented(data, max_steps, tracer, metrics, profile)

    def run_reference(
        self, text: Union[str, bytes], max_steps: Optional[int] = None
    ) -> MatchResult:
        """The pre-optimization interpreter (golden reference)."""
        return self._run(_as_bytes(text), None, max_steps)

    def _run_fast(
        self, data: bytes, max_steps: Optional[int] = None
    ) -> MatchResult:
        opcodes = self._opcodes
        operands = self._operands
        successors = self._successors
        length = len(data)

        ACCEPT = int(Opcode.ACCEPT)
        ACCEPT_PARTIAL = int(Opcode.ACCEPT_PARTIAL)
        MATCH_ANY = int(Opcode.MATCH_ANY)
        NOT_MATCH = int(Opcode.NOT_MATCH)

        frontier: List[int] = list(self._entry)
        executed = 0
        for position in range(length + 1):
            if not frontier:
                break
            has_char = position < length
            char = data[position] if has_char else -1
            visited: Set[int] = set()
            next_roots: Set[int] = set()
            worklist = frontier
            while worklist:
                pc = worklist.pop()
                if pc in visited:
                    continue
                visited.add(pc)
                opcode = opcodes[pc]
                if opcode == NOT_MATCH:
                    # ε conditioned on the current character: fold the
                    # successor closure into this position's worklist.
                    if has_char and char != operands[pc]:
                        worklist.extend(successors[pc])
                elif opcode == MATCH_ANY:
                    if has_char:
                        next_roots.add(pc)
                elif opcode == ACCEPT_PARTIAL:
                    return MatchResult(True, position)
                elif opcode == ACCEPT:
                    if not has_char:
                        return MatchResult(True, position)
                else:  # MATCH
                    if has_char and char == operands[pc]:
                        next_roots.add(pc)
            if max_steps is not None:
                executed += len(visited)
                if executed > max_steps:
                    raise VMStepBudgetError(
                        executed, max_steps, self.program.source_pattern
                    )
            frontier = []
            for root in next_roots:
                frontier.extend(successors[root])
        return MatchResult(False, None)

    def _run_fast_instrumented(
        self,
        data: bytes,
        max_steps: Optional[int],
        tracer,
        metrics,
        profile=None,
    ) -> MatchResult:
        """The fast path plus telemetry counters.

        A separate copy of :meth:`_run_fast`'s loop so the untraced hot
        path carries zero extra branches (the ``observability_overhead``
        benchmark gate).  Counts per run: executed work instructions
        (``steps``), per-position dedup suppressions, and ε-closure
        dispatch-table expansions (``closure_hits``).  With ``profile``,
        every step is additionally attributed to its PC at the same
        ``visited.add`` site the aggregate counts, so
        ``sum(profile.pc_counts)`` equals ``steps`` exactly on every
        exit path (early accepts and budget aborts included).
        """
        from ..observability import NULL_TRACER, as_tracer

        active_tracer = as_tracer(tracer)
        if not active_tracer.enabled:
            active_tracer = NULL_TRACER
        pc_counts = profile.pc_counts if profile is not None else None

        opcodes = self._opcodes
        operands = self._operands
        successors = self._successors
        length = len(data)

        ACCEPT = int(Opcode.ACCEPT)
        ACCEPT_PARTIAL = int(Opcode.ACCEPT_PARTIAL)
        MATCH_ANY = int(Opcode.MATCH_ANY)
        NOT_MATCH = int(Opcode.NOT_MATCH)

        steps = 0
        dedup_suppressed = 0
        closure_hits = 0
        positions = 0
        with active_tracer.span(
            "vm.run", program_size=len(opcodes), input_bytes=length
        ) as span:
            result = MatchResult(False, None)
            frontier: List[int] = list(self._entry)
            try:
                for position in range(length + 1):
                    if not frontier:
                        break
                    positions += 1
                    has_char = position < length
                    char = data[position] if has_char else -1
                    visited: Set[int] = set()
                    next_roots: Set[int] = set()
                    worklist = frontier
                    while worklist:
                        pc = worklist.pop()
                        if pc in visited:
                            dedup_suppressed += 1
                            continue
                        visited.add(pc)
                        if pc_counts is not None:
                            pc_counts[pc] += 1
                        opcode = opcodes[pc]
                        if opcode == NOT_MATCH:
                            if has_char and char != operands[pc]:
                                closure_hits += 1
                                worklist.extend(successors[pc])
                        elif opcode == MATCH_ANY:
                            if has_char:
                                next_roots.add(pc)
                        elif opcode == ACCEPT_PARTIAL:
                            result = MatchResult(True, position)
                            steps += len(visited)
                            return result
                        elif opcode == ACCEPT:
                            if not has_char:
                                result = MatchResult(True, position)
                                steps += len(visited)
                                return result
                        else:  # MATCH
                            if has_char and char == operands[pc]:
                                next_roots.add(pc)
                    steps += len(visited)
                    if max_steps is not None and steps > max_steps:
                        raise VMStepBudgetError(
                            steps, max_steps, self.program.source_pattern
                        )
                    frontier = []
                    for root in next_roots:
                        closure_hits += 1
                        frontier.extend(successors[root])
                return result
            finally:
                span.set(
                    steps=steps,
                    dedup_suppressed=dedup_suppressed,
                    closure_hits=closure_hits,
                    positions=positions,
                    matched=result.matched,
                )
                if profile is not None:
                    profile.runs += 1
                    profile.positions += positions
                    if result.matched:
                        profile.matches += 1
                if metrics is not None and metrics.enabled:
                    metrics.counter(
                        "repro_vm_runs_total",
                        help_text="ThompsonVM fast-path executions",
                    ).inc()
                    metrics.counter(
                        "repro_vm_steps_total",
                        help_text="work instructions executed by the VM",
                    ).inc(steps)
                    metrics.counter(
                        "repro_vm_dedup_suppressed_total",
                        help_text="threads killed by per-position dedup",
                    ).inc(dedup_suppressed)
                    metrics.counter(
                        "repro_vm_closure_hits_total",
                        help_text="precomputed ε-closure table expansions",
                    ).inc(closure_hits)

    def run_with_stats(
        self, text: Union[str, bytes], max_steps: Optional[int] = None
    ):
        """Like :meth:`run` but also returns :class:`VMStatistics`."""
        stats = VMStatistics()
        result = self._run(_as_bytes(text), stats, max_steps)
        return result, stats

    def _run(
        self,
        data: bytes,
        stats: Optional[VMStatistics],
        max_steps: Optional[int] = None,
    ) -> MatchResult:
        opcodes = self._opcodes
        operands = self._operands
        length = len(data)

        ACCEPT = int(Opcode.ACCEPT)
        ACCEPT_PARTIAL = int(Opcode.ACCEPT_PARTIAL)
        SPLIT = int(Opcode.SPLIT)
        JMP = int(Opcode.JMP)
        MATCH_ANY = int(Opcode.MATCH_ANY)
        MATCH = int(Opcode.MATCH)
        NOT_MATCH = int(Opcode.NOT_MATCH)

        frontier: List[int] = [0]
        if stats is not None:
            stats.threads_spawned += 1
        executed = 0

        for position in range(length + 1):
            if not frontier:
                break
            char = data[position] if position < length else None
            at_end = position == length
            visited: Set[int] = set()
            next_frontier: List[int] = []
            worklist = list(frontier)
            while worklist:
                pc = worklist.pop()
                if pc in visited:
                    if stats is not None:
                        stats.threads_killed += 1
                    continue
                visited.add(pc)
                opcode = opcodes[pc]
                if stats is not None:
                    stats.instructions_executed += 1
                if opcode == SPLIT:
                    worklist.append(pc + 1)
                    worklist.append(operands[pc])
                    if stats is not None:
                        stats.threads_spawned += 1
                elif opcode == JMP:
                    worklist.append(operands[pc])
                elif opcode == ACCEPT_PARTIAL:
                    return MatchResult(True, position)
                elif opcode == ACCEPT:
                    if at_end:
                        return MatchResult(True, position)
                    if stats is not None:
                        stats.threads_killed += 1
                elif opcode == NOT_MATCH:
                    if char is not None and char != operands[pc]:
                        worklist.append(pc + 1)
                    elif stats is not None:
                        stats.threads_killed += 1
                elif opcode == MATCH_ANY:
                    if char is not None:
                        next_frontier.append(pc + 1)
                    elif stats is not None:
                        stats.threads_killed += 1
                else:  # MATCH
                    if char is not None and char == operands[pc]:
                        next_frontier.append(pc + 1)
                    elif stats is not None:
                        stats.threads_killed += 1
            if stats is not None:
                stats.positions_processed += 1
                stats.frontier_sizes.append(len(next_frontier))
                stats.max_frontier = max(stats.max_frontier, len(next_frontier))
            if max_steps is not None:
                # Per-position accounting keeps the inner loop free of
                # budget branches; |visited| is exactly the number of
                # distinct instructions executed at this position.
                executed += len(visited)
                if executed > max_steps:
                    raise VMStepBudgetError(
                        executed, max_steps, self.program.source_pattern
                    )
            frontier = next_frontier
        return MatchResult(False, None)


def run_program(program: Program, text: Union[str, bytes]) -> MatchResult:
    """One-shot convenience wrapper."""
    return ThompsonVM(program).run(text)
